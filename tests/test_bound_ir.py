"""Lazy-materialization equivalence suite for the compact bound-circuit IR.

``ParametricTemplate.bind_batch_ir`` packs a whole bind into shared
arrays (:class:`repro.transpile.bound.BoundCircuitBatch`); every consumer
then has two routes to the same answer — walk the arrays directly, or
materialize the eager instruction stream.  The contract is strict on
both: ``BoundCircuit.materialize()`` must equal the eager per-sample
``bind`` output **float-bit** (same gate names, qubit tuples, and the
same floating-point bits in every Rz angle), and the IR statevector fast
path must equal simulating the materialized circuit **exactly**
(``np.array_equal``, no tolerance).  The sweeps reuse the branch-cut
angle batches of ``test_template_batch`` so one-ulp numeric drift near
the ±pi Euler cut cannot hide.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ansatz import EnQodeAnsatz
from repro.hardware import brisbane_linear_segment
from repro.quantum import (
    QuantumCircuit,
    StatevectorSimulator,
    simulate_statevector,
)
from repro.transpile import BoundCircuit, BoundCircuitBatch
from repro.transpile.template import ParametricTemplate

from tests.test_template_batch import branch_cut_thetas


def assert_instructions_identical(actual, expected):
    actual = list(actual)
    expected = list(expected)
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert a.gate.name == b.gate.name
        assert a.qubits == b.qubits
        # Tuple equality on floats is exact — no allclose fuzz.
        assert a.gate.params == b.gate.params


@pytest.mark.parametrize("num_qubits,num_layers", [(3, 3), (4, 4), (5, 3)])
@pytest.mark.parametrize("level", [0, 1])
def test_materialize_matches_eager_bind(num_qubits, num_layers, level, rng):
    """Seeded sweep: every IR row materializes to the eager bind stream."""
    ansatz = EnQodeAnsatz(num_qubits, num_layers)
    backend = brisbane_linear_segment(num_qubits)
    template = ParametricTemplate(ansatz, backend, level)
    thetas = branch_cut_thetas(ansatz.num_parameters, rng)
    bound = template.bind_batch_ir(thetas)
    assert isinstance(bound, BoundCircuitBatch)
    assert bound.batch_size == thetas.shape[0]
    for row, theta in enumerate(thetas):
        eager = template.bind(theta).circuit
        materialized = bound.circuit(row).materialize()
        assert type(materialized) is QuantumCircuit
        assert_instructions_identical(materialized, eager)


@pytest.mark.parametrize("batch_size", [1, 2, 7, 16])
def test_batch_size_sweep(segment4, rng, batch_size):
    ansatz = EnQodeAnsatz(4, 4)
    template = ParametricTemplate(ansatz, segment4, 1)
    thetas = branch_cut_thetas(ansatz.num_parameters, rng)[:batch_size]
    bound = template.bind_batch_ir(thetas)
    for row, theta in enumerate(thetas):
        assert_instructions_identical(
            bound.circuit(row).materialize(), template.bind(theta).circuit
        )


@pytest.mark.parametrize("level", [0, 1])
def test_ir_statevector_matches_materialized_simulation(segment4, rng, level):
    """The array-walking fast path equals eager simulation bitwise."""
    ansatz = EnQodeAnsatz(4, 4)
    template = ParametricTemplate(ansatz, segment4, level)
    thetas = branch_cut_thetas(ansatz.num_parameters, rng)
    bound = template.bind_batch_ir(thetas)
    simulator = StatevectorSimulator()
    for row in range(bound.batch_size):
        circuit = bound.circuit(row)
        fast = simulate_statevector(circuit)
        assert not circuit.is_materialized  # the fast path built no objects
        reference = simulate_statevector(circuit.materialize())
        assert np.array_equal(fast.data, reference.data)
        # The simulator front-end dispatches through the same hook.
        via_simulator = simulator.run(circuit)
        assert np.array_equal(via_simulator.data, reference.data)
        assert not circuit.is_materialized


def test_structural_queries_answer_without_materializing(segment4, rng):
    ansatz = EnQodeAnsatz(4, 4)
    template = ParametricTemplate(ansatz, segment4, 1)
    thetas = branch_cut_thetas(ansatz.num_parameters, rng)
    bound = template.bind_batch_ir(thetas)
    for row in range(bound.batch_size):
        circuit = bound.circuit(row)
        lazy = (
            len(circuit),
            circuit.count_ops(),
            circuit.count_ops(physical_only=True),
            circuit.num_gates(),
            circuit.num_gates(physical_only=True),
            circuit.num_one_qubit_gates(),
            circuit.num_one_qubit_gates(physical_only=True),
            circuit.num_two_qubit_gates(),
        )
        assert not circuit.is_materialized
        list(circuit)  # any instruction access materializes (once)
        assert circuit.is_materialized
        eager = (
            len(circuit),
            circuit.count_ops(),
            circuit.count_ops(physical_only=True),
            circuit.num_gates(),
            circuit.num_gates(physical_only=True),
            circuit.num_one_qubit_gates(),
            circuit.num_one_qubit_gates(physical_only=True),
            circuit.num_two_qubit_gates(),
        )
        assert lazy == eager


def test_bind_batch_rows_are_lazy_and_independent(segment4, rng):
    """bind_batch wraps lazy views; materialized lists never alias."""
    ansatz = EnQodeAnsatz(4, 4)
    template = ParametricTemplate(ansatz, segment4, 1)
    thetas = rng.uniform(-np.pi, np.pi, (3, ansatz.num_parameters))
    results = template.bind_batch(thetas)
    assert all(isinstance(r.circuit, BoundCircuit) for r in results)
    assert not any(r.circuit.is_materialized for r in results)
    first = list(results[0].circuit)
    assert results[0].circuit.is_materialized
    assert not results[1].circuit.is_materialized
    results[0].circuit._instructions.append("sentinel")
    assert list(results[1].circuit)[-1] != "sentinel"
    assert len(first) + 1 == len(results[0].circuit)


def test_payload_accounting(segment4, rng):
    """Per-sample payload is a few hundred bytes of arrays, and row
    payloads sum (with the shared theta matrix) to the batch total."""
    ansatz = EnQodeAnsatz(4, 4)
    template = ParametricTemplate(ansatz, segment4, 1)
    thetas = rng.uniform(-np.pi, np.pi, (8, ansatz.num_parameters))
    bound = template.bind_batch_ir(thetas)
    total = bound.payload_nbytes()
    per_row = [bound.payload_nbytes_row(r) for r in range(8)]
    assert total == sum(per_row)
    assert all(0 < p < 4096 for p in per_row)


def test_service_responses_carry_compact_ir(segment4):
    """Submit-then-flush returns lazy BoundCircuits float-bit identical
    to the encode_batch circuits for the same samples."""
    from repro.core import EnQodeConfig, EnQodeEncoder
    from repro.service import EncodingService

    rng = np.random.default_rng(11)
    center = rng.normal(size=16)
    center /= np.linalg.norm(center)
    samples = center + 0.03 * rng.normal(size=(6, 16))
    samples /= np.linalg.norm(samples, axis=1, keepdims=True)

    config = EnQodeConfig(
        num_qubits=4,
        num_layers=4,
        offline_restarts=1,
        offline_max_iterations=150,
        online_max_iterations=25,
        max_clusters=2,
        seed=2,
    )
    encoder = EnQodeEncoder(segment4, config)
    encoder.fit(samples)
    reference = encoder.encode_batch(samples)

    service = EncodingService(max_batch=len(samples))
    service.register("only", encoder)
    tickets = [service.submit(x, key="only") for x in samples]
    assert all(ticket.done for ticket in tickets)
    for ticket, ref in zip(tickets, reference):
        response = ticket.result()
        circuit = response.circuit
        assert isinstance(circuit, BoundCircuit)
        assert isinstance(ref.circuit, BoundCircuit)
        assert_instructions_identical(circuit, ref.circuit)
