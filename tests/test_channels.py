"""Unit tests for Kraus channels."""

import numpy as np
import pytest

from repro.errors import NoiseModelError
from repro.quantum.channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    identity_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)


def _is_trace_preserving(channel):
    dim = 2**channel.num_qubits
    total = sum(op.conj().T @ op for op in channel.operators)
    return np.allclose(total, np.eye(dim), atol=1e-9)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: identity_channel(1),
        lambda: identity_channel(2),
        lambda: depolarizing_channel(0.13, 1),
        lambda: depolarizing_channel(0.07, 2),
        lambda: amplitude_damping_channel(0.4),
        lambda: phase_damping_channel(0.2),
        lambda: bit_flip_channel(0.35),
        lambda: phase_flip_channel(0.5),
        lambda: thermal_relaxation_channel(2e-4, 1.4e-4, 6.6e-7),
    ],
)
def test_channels_trace_preserving(factory):
    assert _is_trace_preserving(factory())


def test_invalid_probability_rejected():
    for bad in (-0.1, 1.1):
        with pytest.raises(NoiseModelError):
            depolarizing_channel(bad, 1)
        with pytest.raises(NoiseModelError):
            amplitude_damping_channel(bad)
        with pytest.raises(NoiseModelError):
            bit_flip_channel(bad)


def test_empty_channel_rejected():
    with pytest.raises(NoiseModelError):
        KrausChannel([])


def test_non_cptp_rejected():
    with pytest.raises(NoiseModelError):
        KrausChannel([np.eye(2) * 0.5])


def test_identity_detection():
    assert identity_channel(1).is_identity
    assert not depolarizing_channel(0.1, 1).is_identity
    assert thermal_relaxation_channel(1e-4, 1e-4, 0.0).is_identity


def test_depolarizing_limit_is_maximally_mixing():
    channel = depolarizing_channel(1.0, 1)
    rho = np.array([[1.0, 0.0], [0.0, 0.0]])
    out = sum(K @ rho @ K.conj().T for K in channel.operators)
    assert np.allclose(out, np.eye(2) / 2)


def test_amplitude_damping_decays_excited_state():
    gamma = 0.3
    channel = amplitude_damping_channel(gamma)
    rho = np.array([[0.0, 0.0], [0.0, 1.0]])  # |1><1|
    out = sum(K @ rho @ K.conj().T for K in channel.operators)
    assert out[1, 1] == pytest.approx(1 - gamma)
    assert out[0, 0] == pytest.approx(gamma)


def test_thermal_relaxation_coherence_decay_rate():
    t1, t2, dt = 2.3e-4, 1.1e-4, 5e-6
    channel = thermal_relaxation_channel(t1, t2, dt)
    plus = 0.5 * np.ones((2, 2))
    out = sum(K @ plus @ K.conj().T for K in channel.operators)
    assert abs(out[0, 1]) == pytest.approx(0.5 * np.exp(-dt / t2), rel=1e-6)


def test_thermal_relaxation_population_decay_rate():
    t1, t2, dt = 2.3e-4, 1.1e-4, 5e-6
    channel = thermal_relaxation_channel(t1, t2, dt)
    excited = np.diag([0.0, 1.0])
    out = sum(K @ excited @ K.conj().T for K in channel.operators)
    assert out[1, 1] == pytest.approx(np.exp(-dt / t1), rel=1e-6)


def test_thermal_relaxation_unphysical_rejected():
    with pytest.raises(NoiseModelError):
        thermal_relaxation_channel(1e-4, 2.5e-4, 1e-6)  # T2 > 2*T1
    with pytest.raises(NoiseModelError):
        thermal_relaxation_channel(-1.0, 1e-4, 1e-6)
    with pytest.raises(NoiseModelError):
        thermal_relaxation_channel(1e-4, 1e-4, -1e-6)


def test_compose_applies_in_order():
    damp = amplitude_damping_channel(1.0)  # everything -> |0>
    flip = bit_flip_channel(1.0)  # then X
    composed = damp.compose(flip)
    rho = np.diag([0.0, 1.0])
    out = sum(K @ rho @ K.conj().T for K in composed.operators)
    assert out[1, 1] == pytest.approx(1.0)  # damped to |0>, flipped to |1>


def test_compose_arity_mismatch():
    with pytest.raises(NoiseModelError):
        identity_channel(1).compose(identity_channel(2))


def test_expand_tensor_product():
    expanded = bit_flip_channel(1.0).expand(identity_channel(1))
    rho = np.zeros((4, 4))
    rho[0, 0] = 1.0  # |00>
    out = sum(K @ rho @ K.conj().T for K in expanded.operators)
    assert out[2, 2] == pytest.approx(1.0)  # first qubit flipped -> |10>


def test_superoperator_matches_kraus(rng):
    channel = depolarizing_channel(0.2, 2)
    superop = channel.superoperator_tensor().reshape(16, 16)
    rho = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
    rho = rho @ rho.conj().T
    rho /= np.trace(rho)
    expected = sum(K @ rho @ K.conj().T for K in channel.operators)
    got = (superop @ rho.reshape(-1)).reshape(4, 4)
    assert np.allclose(got, expected)


def test_superoperator_is_cached():
    channel = depolarizing_channel(0.1, 1)
    assert channel.superoperator_tensor() is channel.superoperator_tensor()
