"""Deterministic fault-injection (chaos) suite for the threaded service.

The PR-9 chaos acceptance criteria: under injected stage faults,
latencies, retries, worker deaths, and flush-timeout abandonment, the
service loses no ticket (every one resolves as done or failed), never
deadlocks (stop() joins cleanly under the test watchdog), conserves its
accounting ledger, and keeps successful responses float-bit identical
to a fault-free synchronous ``encode_batch`` replay of the same flush
partition.  Degraded (shed) responses are flagged and exactly equal the
finetune-skipped centroid path.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import EnQodeConfig, EnQodeEncoder
from repro.errors import DeadlineExceededError, ServiceError
from repro.service import (
    EncodingService,
    FaultInjector,
    FaultRule,
)

pytestmark = pytest.mark.timeout(90)


@pytest.fixture(scope="module")
def cluster_data():
    rng = np.random.default_rng(55)
    centers = rng.normal(size=(2, 16))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    blocks = []
    for center in centers:
        block = center + 0.04 * rng.normal(size=(30, 16))
        blocks.append(block / np.linalg.norm(block, axis=1, keepdims=True))
    return np.concatenate(blocks)


def _fit(segment4, data, seed):
    config = EnQodeConfig(
        num_qubits=4,
        num_layers=4,
        offline_restarts=2,
        offline_max_iterations=200,
        online_max_iterations=40,
        max_clusters=3,
        seed=seed,
    )
    encoder = EnQodeEncoder(segment4, config)
    encoder.fit(data)
    return encoder


@pytest.fixture(scope="module")
def fitted_pair(segment4, cluster_data):
    half = len(cluster_data) // 2
    return (
        _fit(segment4, cluster_data[:half], seed=3),
        _fit(segment4, cluster_data[half:], seed=5),
    )


def _assert_all_resolved(tickets):
    """No lost or hung tickets: every event is set, with exactly one
    of response/error populated."""
    for ticket in tickets:
        assert ticket._event.is_set(), f"ticket {ticket.request.request_id} hung"
        assert ticket.done != ticket.failed


def _assert_conserved(stats):
    assert stats.requests_submitted == (
        stats.requests_completed
        + stats.requests_failed
        + stats.rejected
        + stats.requests_pending
    )
    assert stats.requests_pending == 0


def _assert_replay_identical(service, tickets):
    """Successful non-degraded responses, grouped by flush_id, must be
    float-bit identical to a fault-free sync ``encode_batch`` replay of
    the same per-key batch partition."""
    groups: dict = {}
    for ticket in tickets:
        if not ticket.done or ticket.response.degraded:
            continue
        response = ticket.response
        groups.setdefault((response.key, response.flush_id), []).append(
            (response, ticket.request.sample)
        )
    assert groups, "chaos run completed no requests; faults too aggressive"
    for (key, _fid), group in groups.items():
        encoder = service.registry.get(key)
        samples = np.stack([sample for _, sample in group])
        for (response, _), reference in zip(
            group, encoder.encode_batch(samples)
        ):
            assert response.cluster_index == reference.cluster_index
            assert np.array_equal(response.encoded.theta, reference.theta)
            assert (
                response.encoded.ideal_fidelity == reference.ideal_fidelity
            )
            assert list(response.circuit) == list(reference.circuit)


# -- the main chaos run ----------------------------------------------------------------


def test_chaos_mixed_faults_no_lost_tickets_and_bit_identical_replay(
    fitted_pair, cluster_data
):
    """Probabilistic stage/flush faults + latency + retries, 2 keys, a
    concurrent worker pool: everything resolves, the ledger balances,
    and whatever succeeded is bit-identical to the fault-free path."""
    injector = FaultInjector(
        [
            FaultRule("finetune", kind="error", probability=0.2),
            FaultRule("flush", kind="error", probability=0.2),
            FaultRule("route", kind="latency", latency=0.002, probability=0.3),
        ],
        seed=1234,
    )
    with EncodingService(
        backend="thread",
        workers=3,
        max_batch=4,
        max_delay=0.005,
        retry_attempts=4,
        retry_backoff=0.001,
        fault_injector=injector,
    ) as service:
        service.register("left", fitted_pair[0])
        service.register("right", fitted_pair[1])
        tickets = [
            service.submit(x, key="left" if i % 2 else "right")
            for i, x in enumerate(cluster_data[:24])
        ]
        service.drain(timeout=30.0)
        stats = service.stats()

    assert injector.fired_count() > 0, "chaos run injected nothing"
    _assert_all_resolved(tickets)
    _assert_conserved(stats)
    assert stats.retries > 0  # transient faults actually exercised retry
    _assert_replay_identical(service, tickets)
    # Failed tickets (retry budget exhausted) re-raise loudly.
    for ticket in tickets:
        if ticket.failed:
            with pytest.raises(ServiceError, match="flush"):
                ticket.result(flush=False)


def test_sync_chaos_run_is_exactly_replayable(fitted_pair, cluster_data):
    """Same rules + same seed + same arrival order = same faults, same
    outcomes, bit-identical numerics — the determinism contract."""

    def run():
        injector = FaultInjector(
            [FaultRule("flush", kind="error", probability=0.4)], seed=7
        )
        service = EncodingService(
            max_batch=100,  # no inline size trigger while submitting
            retry_attempts=1,
            retry_backoff=0.0,
            fault_injector=injector,
        )
        service.register("k", fitted_pair[0])
        tickets = []
        for x in cluster_data[:16]:
            tickets.append(service.submit(x, key="k"))
        service.batcher.max_batch = 4  # drain 4-at-a-time below
        # Flush 4-at-a-time; a failed flush fails only its own batch.
        while service.pending:
            try:
                service.flush()
            except ServiceError:
                pass
        outcomes = [
            (t.done, tuple(t.response.encoded.theta) if t.done else None)
            for t in tickets
        ]
        return outcomes, list(injector.log)

    first_outcomes, first_log = run()
    second_outcomes, second_log = run()
    assert first_log == second_log
    assert first_outcomes == second_outcomes


# -- worker death ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "backend",
    [
        "thread",
        pytest.param(
            "process",
            marks=[
                pytest.mark.process_backend,
                pytest.mark.timeout(300),
            ],
        ),
    ],
)
def test_worker_death_respawns_and_loses_nothing(
    fitted_pair, cluster_data, backend
):
    """Injected deaths under both concurrent backends: threads respawn
    a worker thread; the process backend additionally SIGKILLs and
    respawns the routed worker *process*.  Either way the batch
    requeues in order and nothing is lost."""
    injector = FaultInjector(
        [FaultRule("worker", kind="death", times=2, probability=1.0)]
    )
    with EncodingService(
        backend=backend,
        workers=2,
        max_batch=4,
        max_delay=0.005,
        fault_injector=injector,
    ) as service:
        service.register("k", fitted_pair[0])
        tickets = [service.submit(x, key="k") for x in cluster_data[:12]]
        service.drain(timeout=180.0)
        assert service._backend_impl._respawns == 2
        if backend == "process":
            # Both SIGKILLed processes respawn; traffic rerouted to the
            # survivor in the interim, so no ticket waited on them.
            deadline = time.monotonic() + 120.0
            backend_impl = service._backend_impl
            while (
                backend_impl.process_respawns < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.1)
            assert backend_impl.process_respawns >= 2
            assert backend_impl._respawn_failures == 0
        stats = service.stats()

    assert injector.fired_count("worker") == 2
    _assert_all_resolved(tickets)
    assert all(t.done for t in tickets)  # deaths requeue, never fail work
    _assert_conserved(stats)
    _assert_replay_identical(service, tickets)


# -- flush-timeout abandonment ---------------------------------------------------------


def test_flush_timeout_abandons_wedged_flush(fitted_pair, cluster_data):
    """A wedged fine-tune can't head-of-line-block its key forever:
    the flusher abandons it, fails its tickets, and follow-up traffic
    proceeds while the zombie's late result is discarded."""
    injector = FaultInjector(
        [FaultRule("finetune", kind="latency", latency=0.8, times=1)]
    )
    with EncodingService(
        backend="thread",
        workers=2,
        max_batch=4,
        max_delay=0.005,
        flush_timeout=0.15,
        fault_injector=injector,
    ) as service:
        service.register("k", fitted_pair[0])
        wedged = service.submit(cluster_data[0], key="k")
        with pytest.raises(DeadlineExceededError, match="flush_timeout"):
            wedged.result(timeout=5.0)
        # The key is free again: follow-up traffic serves normally even
        # though the zombie flush is still sleeping in its fault.
        follow_up = service.submit(cluster_data[1], key="k")
        assert follow_up.result(timeout=5.0).encoded is not None
        service.drain(timeout=30.0)
        stats = service.stats()

    assert stats.deadline_expired == 1
    assert stats.requests_failed == 1
    assert stats.requests_completed == 1  # zombie result was discarded
    _assert_conserved(stats)


# -- degraded shedding under concurrency -----------------------------------------------


def test_degrade_shed_under_thread_backend(fitted_pair, cluster_data):
    """Over-budget flood with the degrade policy: every ticket resolves,
    shed responses are flagged and exactly the centroid bind."""
    with EncodingService(
        backend="thread",
        workers=2,
        max_batch=4,
        max_delay=0.01,
        max_pending_per_key=4,
        overload_policy="degrade",
    ) as service:
        service.register("k", fitted_pair[1])
        tickets = []

        def flood():
            for x in cluster_data[:20]:
                tickets.append(service.submit(x, key="k"))

        threads = [threading.Thread(target=flood) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.drain(timeout=30.0)
        stats = service.stats()

    _assert_all_resolved(tickets)
    _assert_conserved(stats)
    assert stats.requests_submitted == 40
    assert stats.shed_degraded == sum(
        1 for t in tickets if t.done and t.response.degraded
    )
    encoder = fitted_pair[1]
    for ticket in tickets:
        if ticket.done and ticket.response.degraded:
            response = ticket.response
            assert response.flush_id == -1
            centroid = encoder._transfer.cluster_thetas[
                response.cluster_index
            ]
            assert np.array_equal(response.encoded.theta, centroid)
            assert response.encoded.optimizer_evaluations == 0
    _assert_replay_identical(service, tickets)
