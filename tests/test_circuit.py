"""Unit tests for the QuantumCircuit model."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.quantum import QuantumCircuit, gate, simulate_statevector
from repro.utils.linalg import allclose_up_to_global_phase


def test_needs_at_least_one_qubit():
    with pytest.raises(CircuitError):
        QuantumCircuit(0)


def test_builder_methods_chain():
    qc = QuantumCircuit(2).h(0).cx(0, 1).rz(0.2, 1)
    assert len(qc) == 3
    assert [i.name for i in qc] == ["h", "cx", "rz"]


def test_append_rejects_out_of_range():
    qc = QuantumCircuit(2)
    with pytest.raises(CircuitError):
        qc.x(2)


def test_depth_parallel_gates():
    qc = QuantumCircuit(4)
    qc.h(0).h(1).h(2).h(3)       # one layer
    qc.cx(0, 1).cx(2, 3)         # one layer
    qc.cx(1, 2)                  # third layer
    assert qc.depth() == 3


def test_depth_excludes_virtual_when_asked():
    qc = QuantumCircuit(1).rz(0.1, 0).sx(0).rz(0.2, 0).sx(0).rz(0.3, 0)
    assert qc.depth() == 5
    assert qc.depth(physical_only=True) == 2


def test_count_ops_and_gate_counters():
    qc = QuantumCircuit(3).h(0).h(1).cx(0, 1).rz(0.5, 2).swap(1, 2)
    counts = qc.count_ops()
    assert counts == {"h": 2, "cx": 1, "rz": 1, "swap": 1}
    assert qc.num_gates() == 5
    assert qc.num_gates(physical_only=True) == 4
    assert qc.num_one_qubit_gates() == 3
    assert qc.num_one_qubit_gates(physical_only=True) == 2
    assert qc.num_two_qubit_gates() == 2


def test_compose_identity_mapping():
    a = QuantumCircuit(2).h(0)
    b = QuantumCircuit(2).cx(0, 1)
    a.compose(b)
    assert [i.name for i in a] == ["h", "cx"]


def test_compose_with_mapping():
    inner = QuantumCircuit(2).cx(0, 1)
    outer = QuantumCircuit(3)
    outer.compose(inner, qubits=[2, 0])
    assert outer[0].qubits == (2, 0)


def test_compose_mapping_length_mismatch():
    with pytest.raises(CircuitError):
        QuantumCircuit(3).compose(QuantumCircuit(2).h(0), qubits=[0])


def test_inverse_reverses_and_inverts():
    qc = QuantumCircuit(2).h(0).cx(0, 1).rz(0.7, 1)
    identity = qc.copy().compose(qc.inverse()).to_matrix()
    assert allclose_up_to_global_phase(identity, np.eye(4))


def test_to_matrix_bell_circuit():
    qc = QuantumCircuit(2).h(0).cx(0, 1)
    bell = qc.to_matrix() @ np.array([1, 0, 0, 0])
    assert np.allclose(bell, np.array([1, 0, 0, 1]) / np.sqrt(2))


def test_to_matrix_matches_statevector_sim():
    qc = QuantumCircuit(3).h(0).cy(0, 2).rx(0.3, 1).cz(1, 2)
    col = qc.to_matrix()[:, 0]
    psi = simulate_statevector(qc).data
    assert np.allclose(col, psi)


def test_to_matrix_size_guard():
    qc = QuantumCircuit(11)
    with pytest.raises(CircuitError):
        qc.to_matrix()


def test_qubits_used():
    qc = QuantumCircuit(5).h(1).cx(1, 3)
    assert qc.qubits_used() == {1, 3}


def test_copy_is_independent():
    qc = QuantumCircuit(1).x(0)
    dup = qc.copy()
    dup.x(0)
    assert len(qc) == 1
    assert len(dup) == 2


def test_unitary_append():
    qc = QuantumCircuit(1)
    qc.unitary(gate("h").matrix, [0], label="had")
    assert qc[0].name == "had"


def test_empty_circuit_depth_zero():
    assert QuantumCircuit(3).depth() == 0
