"""Unit tests for k-means clustering and the cluster-count rule."""

import numpy as np
import pytest

from repro.core import (
    KMeans,
    dot_fidelity,
    min_nearest_fidelity,
    nearest_center,
    select_num_clusters,
)
from repro.errors import ClusteringError


def _blobs(rng, centers, per_cluster=40, spread=0.05):
    data = []
    for center in centers:
        data.append(center + spread * rng.normal(size=(per_cluster, len(center))))
    return np.concatenate(data)


def test_kmeans_recovers_separated_blobs(rng):
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [-5.0, 5.0]])
    data = _blobs(rng, centers)
    model = KMeans(3, seed=0).fit(data)
    found = model.centers_[np.argsort(model.centers_[:, 0])]
    expected = centers[np.argsort(centers[:, 0])]
    assert np.allclose(found, expected, atol=0.2)


def test_labels_partition_all_samples(rng):
    data = _blobs(rng, np.array([[0.0, 0.0], [4.0, 0.0]]))
    model = KMeans(2, seed=0).fit(data)
    assert model.labels_.shape == (data.shape[0],)
    assert set(model.labels_) == {0, 1}


def test_inertia_decreases_with_more_clusters(rng):
    data = _blobs(rng, np.array([[0, 0], [3, 3], [6, 0], [0, 6]]), spread=0.4)
    inertias = [
        KMeans(k, seed=0).fit(data).inertia_ for k in (1, 2, 4)
    ]
    assert inertias[0] > inertias[1] > inertias[2]


def test_seeded_fit_reproducible(rng):
    data = _blobs(rng, np.array([[0.0, 0.0], [4.0, 4.0]]))
    a = KMeans(2, seed=7).fit(data)
    b = KMeans(2, seed=7).fit(data)
    assert np.allclose(a.centers_, b.centers_)


def test_predict_assigns_nearest(rng):
    data = _blobs(rng, np.array([[0.0, 0.0], [10.0, 0.0]]))
    model = KMeans(2, seed=0).fit(data)
    label_near_origin = model.predict(np.array([[0.2, -0.1]]))[0]
    assert np.linalg.norm(model.centers_[label_near_origin]) < 1.0


def test_fit_validates_input():
    with pytest.raises(ClusteringError):
        KMeans(2).fit(np.ones(5))
    with pytest.raises(ClusteringError):
        KMeans(5).fit(np.ones((3, 2)))
    with pytest.raises(ClusteringError):
        KMeans(0)


def test_zero_max_iterations_rejected():
    """Regression: max_iterations=0 used to raise UnboundLocalError deep
    inside Lloyd's loop; it must be rejected up front."""
    with pytest.raises(ClusteringError):
        KMeans(2, max_iterations=0)
    with pytest.raises(ClusteringError):
        KMeans(2, num_init=0)


def test_warm_start_fit_extends_previous_centers(rng):
    data = _blobs(rng, np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]]))
    coarse = KMeans(2, seed=0).fit(data)
    warm = KMeans(3, seed=0).fit(data, init_centers=coarse.centers_)
    assert warm.centers_.shape == (3, 2)
    assert warm.inertia_ <= coarse.inertia_ + 1e-9


def test_warm_start_fit_validates_init_centers(rng):
    data = _blobs(rng, np.array([[0.0, 0.0], [6.0, 0.0]]))
    with pytest.raises(ClusteringError):
        KMeans(2, seed=0).fit(data, init_centers=np.ones((5, 2)))
    with pytest.raises(ClusteringError):
        KMeans(2, seed=0).fit(data, init_centers=np.ones((2, 3)))
    with pytest.raises(ClusteringError):
        KMeans(2, seed=0).fit(data, init_centers=np.empty((0, 2)))


def test_predict_before_fit_rejected():
    with pytest.raises(ClusteringError):
        KMeans(2).predict(np.ones((1, 2)))


def test_dot_fidelity_properties(rng):
    a = rng.normal(size=8)
    assert dot_fidelity(a, a) == pytest.approx(1.0)
    assert dot_fidelity(a, -a) == pytest.approx(1.0)  # global sign invariant
    assert dot_fidelity(a, 3.0 * a) == pytest.approx(1.0)  # scale invariant
    b = np.zeros(8)
    b[0] = 1.0
    c = np.zeros(8)
    c[1] = 1.0
    assert dot_fidelity(b, c) == pytest.approx(0.0)
    with pytest.raises(ClusteringError):
        dot_fidelity(a, np.zeros(8))


def test_nearest_center():
    centers = np.array([[0.0, 0.0], [10.0, 0.0]])
    index, distance = nearest_center(np.array([9.0, 0.0]), centers)
    assert index == 1
    assert distance == pytest.approx(1.0)


def test_min_nearest_fidelity_tight_clusters(rng):
    base = rng.normal(size=16)
    base /= np.linalg.norm(base)
    data = base + 0.01 * rng.normal(size=(30, 16))
    assert min_nearest_fidelity(data, base[None, :]) > 0.99


def test_select_num_clusters_meets_threshold(rng):
    # Three well-separated directions on the sphere.
    basis = np.eye(8)[:3]
    data = []
    for direction in basis:
        data.append(direction + 0.03 * rng.normal(size=(40, 8)))
    data = np.concatenate(data)
    data /= np.linalg.norm(data, axis=1, keepdims=True)
    model = select_num_clusters(data, min_fidelity=0.95, seed=0)
    assert min_nearest_fidelity(data, model.centers_) >= 0.95
    assert model.num_clusters <= 6


def test_select_num_clusters_respects_cap(rng):
    data = rng.normal(size=(40, 8))  # unclusterable noise
    model = select_num_clusters(
        data, min_fidelity=0.999, max_clusters=5, seed=0
    )
    assert model.num_clusters <= 5


def test_min_nearest_fidelity_all_zero_centers_rejected(rng):
    """Regression: an all-zero center matrix used to crash on an empty
    numpy reduction; it must raise a clear ClusteringError."""
    data = rng.normal(size=(5, 4))
    with pytest.raises(ClusteringError):
        min_nearest_fidelity(data, np.zeros((3, 4)))
    # A partially-zero center set still works (zero rows are dropped).
    centers = np.zeros((2, 4))
    centers[0] = data[0]
    assert 0.0 <= min_nearest_fidelity(data, centers) <= 1.0
    # A zero data row would silently NaN-poison the cluster search.
    bad = data.copy()
    bad[2] = 0.0
    with pytest.raises(ClusteringError):
        min_nearest_fidelity(bad, centers)


def test_select_num_clusters_warm_start_meets_threshold(rng):
    basis = np.eye(8)[:4]
    data = []
    for direction in basis:
        data.append(direction + 0.03 * rng.normal(size=(30, 8)))
    data = np.concatenate(data)
    data /= np.linalg.norm(data, axis=1, keepdims=True)
    warm = select_num_clusters(data, min_fidelity=0.95, seed=0)
    cold = select_num_clusters(
        data, min_fidelity=0.95, seed=0, warm_start=False
    )
    assert min_nearest_fidelity(data, warm.centers_) >= 0.95
    assert min_nearest_fidelity(data, cold.centers_) >= 0.95
    # Reproducible: the warm-started search is deterministic per seed.
    again = select_num_clusters(data, min_fidelity=0.95, seed=0)
    np.testing.assert_array_equal(warm.centers_, again.centers_)
