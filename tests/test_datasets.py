"""Unit tests for the dataset registry and preprocessing pipeline."""

import numpy as np
import pytest

from repro.data import (
    load_dataset,
    normalize_rows,
    prepare_amplitudes,
    prepare_embedding_dataset,
)
from repro.errors import DataError


def test_normalize_rows():
    rows = normalize_rows(np.array([[3.0, 4.0], [1.0, 0.0]]))
    assert np.allclose(np.linalg.norm(rows, axis=1), 1.0)


def test_normalize_rejects_zero_rows():
    with pytest.raises(DataError):
        normalize_rows(np.zeros((2, 4)))


def test_prepare_amplitudes_pads_and_normalizes():
    rows = prepare_amplitudes(np.array([[3.0, 4.0]]), 4, pad_with=0.0)
    assert rows.shape == (1, 4)
    assert np.allclose(rows, [[0.6, 0.8, 0.0, 0.0]])


def test_prepare_amplitudes_pad_constant_contributes_to_norm():
    rows = prepare_amplitudes(np.array([2.0, 0.0]), 4, pad_with=1.0)
    # padded row is [2, 0, 1, 1] with norm sqrt(6)
    assert np.allclose(rows, np.array([[2.0, 0.0, 1.0, 1.0]]) / np.sqrt(6.0))


def test_prepare_amplitudes_accepts_1d():
    rows = prepare_amplitudes(np.array([1.0, 0.0, 0.0, 0.0]), 4)
    assert rows.shape == (1, 4)


def test_prepare_amplitudes_rejects_short_rows_without_pad():
    with pytest.raises(DataError):
        prepare_amplitudes(np.ones((3, 2)), 4)


def test_prepare_amplitudes_rejects_too_long_rows():
    with pytest.raises(DataError):
        prepare_amplitudes(np.ones((3, 8)), 4, pad_with=0.0)


def test_prepare_amplitudes_rejects_zero_norm():
    with pytest.raises(DataError):
        prepare_amplitudes(np.zeros((1, 4)), 4)


def test_prepare_amplitudes_no_normalize_requires_unit_rows():
    unit = np.array([[0.0, 1.0, 0.0, 0.0]])
    out = prepare_amplitudes(unit, 4, normalize=False)
    assert np.array_equal(out, unit)
    with pytest.raises(DataError):
        prepare_amplitudes(2.0 * unit, 4, normalize=False)


def test_prepare_embedding_dataset_shapes(rng):
    images = rng.random((300, 100))
    labels = rng.integers(0, 3, 300)
    ds = prepare_embedding_dataset("toy", images, labels, num_features=64)
    assert ds.amplitudes.shape == (300, 64)
    assert np.allclose(np.linalg.norm(ds.amplitudes, axis=1), 1.0)
    assert ds.raw_dim == 100
    assert ds.num_samples == 300
    assert ds.num_features == 64


def test_prepare_validates_inputs(rng):
    with pytest.raises(DataError):
        prepare_embedding_dataset(
            "toy", rng.random((10, 20)), rng.integers(0, 2, 5)
        )
    with pytest.raises(DataError):
        prepare_embedding_dataset(
            "toy", rng.random((300, 100)), rng.integers(0, 2, 300),
            num_features=60,
        )


def test_load_dataset_structure(mnist_small):
    assert mnist_small.amplitudes.shape[1] == 256
    assert len(mnist_small.classes()) == 5
    assert mnist_small.num_samples == 5 * 60


def test_class_slice(mnist_small):
    label = int(mnist_small.classes()[0])
    block = mnist_small.class_slice(label)
    assert block.shape == (60, 256)


def test_load_dataset_name_aliases():
    for alias in ("F-MNIST", "fashion_mnist", "CIFAR-10"):
        ds = load_dataset(alias, samples_per_class=52, num_classes=5, seed=0)
        assert ds.name in ("fmnist", "cifar")


def test_load_dataset_unknown_name():
    with pytest.raises(DataError):
        load_dataset("imagenet")


def test_load_dataset_reproducible():
    a = load_dataset("mnist", samples_per_class=52, seed=3)
    b = load_dataset("mnist", samples_per_class=52, seed=3)
    assert np.allclose(a.amplitudes, b.amplitudes)
    assert np.array_equal(a.labels, b.labels)


def test_classes_randomly_sampled_by_seed():
    a = load_dataset("mnist", samples_per_class=52, seed=0)
    b = load_dataset("mnist", samples_per_class=52, seed=99)
    assert not np.array_equal(a.classes(), b.classes())
