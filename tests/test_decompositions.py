"""Unit tests for two-qubit decomposition rules."""

import numpy as np
import pytest

from repro.errors import TranspilerError
from repro.quantum import QuantumCircuit, gate, simulate_statevector
from repro.transpile import decompose_to_cx, expand_cx
from repro.transpile.decompositions import two_qubit_rule
from repro.utils.linalg import allclose_up_to_global_phase
from tests.conftest import random_circuit

RULED_GATES = [
    ("cy", ()),
    ("cz", ()),
    ("ch", ()),
    ("swap", ()),
    ("iswap", ()),
    ("cp", (0.731,)),
    ("crz", (-1.234,)),
    ("cry", (0.456,)),
    ("rzz", (2.1,)),
]


def _rule_matrix(name, params):
    qc = QuantumCircuit(2)
    for gate_name, gate_params, positions in two_qubit_rule(name, params):
        qc.append(gate(gate_name, *gate_params), positions)
    return qc.to_matrix()


@pytest.mark.parametrize("name, params", RULED_GATES)
def test_rule_matches_gate_matrix(name, params):
    assert allclose_up_to_global_phase(
        _rule_matrix(name, params), gate(name, *params).matrix
    )


def test_cx_and_1q_have_no_rule():
    assert two_qubit_rule("cx", ()) is None


def test_decompose_to_cx_only_cx_remains():
    qc = random_circuit(4, 40, seed=0)
    lowered = decompose_to_cx(qc)
    two_qubit_names = {
        i.name for i in lowered if i.gate.num_qubits == 2
    }
    assert two_qubit_names <= {"cx"}


def test_decompose_to_cx_preserves_state():
    for seed in (1, 2, 3):
        qc = random_circuit(4, 30, seed=seed)
        a = simulate_statevector(qc).data
        b = simulate_statevector(decompose_to_cx(qc)).data
        assert abs(np.vdot(a, b)) ** 2 == pytest.approx(1.0)


def test_expand_cx_to_ecr_preserves_state():
    qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).cx(0, 1)
    expanded = expand_cx(qc, "ecr")
    assert all(i.name != "cx" for i in expanded)
    assert "ecr" in expanded.count_ops()
    a = simulate_statevector(qc).data
    b = simulate_statevector(expanded).data
    assert abs(np.vdot(a, b)) ** 2 == pytest.approx(1.0)


def test_expand_cx_to_cz_preserves_state():
    qc = QuantumCircuit(2).h(0).cx(0, 1)
    expanded = expand_cx(qc, "cz")
    a = simulate_statevector(qc).data
    b = simulate_statevector(expanded).data
    assert abs(np.vdot(a, b)) ** 2 == pytest.approx(1.0)


def test_expand_cx_passthrough():
    qc = QuantumCircuit(2).cx(0, 1)
    assert [i.name for i in expand_cx(qc, "cx")] == ["cx"]


def test_expand_cx_unknown_entangler():
    with pytest.raises(TranspilerError):
        expand_cx(QuantumCircuit(2).cx(0, 1), "xx")


def test_three_qubit_gates_rejected():
    from repro.quantum.gates import Gate

    qc = QuantumCircuit(3)
    qc.append(Gate("ccx", 3, (), np.eye(8)), (0, 1, 2))
    with pytest.raises(TranspilerError):
        decompose_to_cx(qc)
