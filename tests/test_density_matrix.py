"""Unit tests for the density-matrix representation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.quantum import (
    DensityMatrix,
    QuantumCircuit,
    Statevector,
    depolarizing_channel,
    gate,
    simulate_statevector,
)


def test_zero_state():
    rho = DensityMatrix.zero_state(2)
    assert rho.data[0, 0] == 1.0
    assert rho.trace() == pytest.approx(1.0)


def test_validation_rejects_bad_trace():
    with pytest.raises(SimulationError):
        DensityMatrix(np.eye(2))


def test_validation_rejects_non_hermitian():
    mat = np.array([[0.5, 1.0], [0.0, 0.5]])
    with pytest.raises(SimulationError):
        DensityMatrix(mat)


def test_evolution_matches_statevector(rng):
    qc = QuantumCircuit(3)
    for _ in range(20):
        q = int(rng.integers(3))
        qc.rx(float(rng.uniform(-3, 3)), q)
        qc.cy(q, (q + 1) % 3)
    psi = simulate_statevector(qc)
    rho = DensityMatrix.zero_state(3).evolve(qc)
    assert np.allclose(rho.data, psi.density_matrix(), atol=1e-10)


def test_apply_unitary_preserves_trace_and_hermiticity(rng):
    rho = DensityMatrix.from_statevector(
        Statevector.from_amplitudes(rng.normal(size=8))
    )
    rho.apply_unitary(gate("h").matrix, (1,))
    assert rho.trace() == pytest.approx(1.0)
    assert np.allclose(rho.data, rho.data.conj().T)


def test_apply_channel_mixes_state():
    rho = DensityMatrix.zero_state(1)
    rho.apply_channel(depolarizing_channel(1.0, 1), (0,))
    assert np.allclose(rho.data, np.eye(2) / 2)
    assert rho.purity() == pytest.approx(0.5)


def test_apply_channel_arity_check():
    rho = DensityMatrix.zero_state(2)
    with pytest.raises(SimulationError):
        rho.apply_channel(depolarizing_channel(0.1, 1), (0, 1))


def test_apply_superop_unitary_equivalence(rng):
    rho = DensityMatrix.from_statevector(
        Statevector.from_amplitudes(rng.normal(size=8))
    )
    ref = rho.copy().apply_unitary(gate("cx").matrix, (0, 2))
    u = gate("cx").matrix
    rho.apply_superop(np.kron(u, u.conj()), (0, 2))
    assert np.allclose(rho.data, ref.data)


def test_purity_of_pure_state():
    rho = DensityMatrix.from_statevector(Statevector.zero_state(2))
    assert rho.purity() == pytest.approx(1.0)


def test_probabilities():
    qc = QuantumCircuit(2).h(0)
    rho = DensityMatrix.zero_state(2).evolve(qc)
    assert np.allclose(rho.probabilities(), [0.5, 0, 0.5, 0])


def test_expectation():
    rho = DensityMatrix.zero_state(1)
    z = np.diag([1.0, -1.0])
    assert rho.expectation(z) == pytest.approx(1.0)


def test_partial_trace_of_product_state():
    qc = QuantumCircuit(2).x(1)
    rho = DensityMatrix.zero_state(2).evolve(qc)
    reduced = rho.partial_trace((1,))
    assert np.allclose(reduced.data, np.diag([0.0, 1.0]))


def test_partial_trace_of_bell_is_mixed():
    qc = QuantumCircuit(2).h(0).cx(0, 1)
    rho = DensityMatrix.zero_state(2).evolve(qc)
    reduced = rho.partial_trace((0,))
    assert np.allclose(reduced.data, np.eye(2) / 2)


def test_partial_trace_keep_order():
    qc = QuantumCircuit(2).x(0)  # |10>
    rho = DensityMatrix.zero_state(2).evolve(qc)
    keep_01 = rho.partial_trace((0, 1))
    keep_10 = rho.partial_trace((1, 0))
    assert keep_01.data[2, 2] == pytest.approx(1.0)  # |10> in (q0,q1) order
    assert keep_10.data[1, 1] == pytest.approx(1.0)  # |01> in (q1,q0) order


def test_circuit_qubit_mismatch():
    with pytest.raises(SimulationError):
        DensityMatrix.zero_state(2).evolve(QuantumCircuit(3).h(0))
