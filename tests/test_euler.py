"""Unit tests for single-qubit ZXZXZ synthesis."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TranspilerError
from repro.quantum import gate, random_unitary
from repro.transpile import physical_1q_cost, synthesize_1q, zyz_decompose
from repro.utils.linalg import allclose_up_to_global_phase


def _realize(ops):
    mat = np.eye(2, dtype=complex)
    for name, params in ops:
        mat = gate(name, *params).matrix @ mat
    return mat


def test_zyz_reconstruction_random():
    for seed in range(20):
        u = random_unitary(1, seed=seed)
        theta, phi, lam, phase = zyz_decompose(u)
        rec = (
            np.exp(1j * phase)
            * gate("rz", phi).matrix
            @ gate("ry", theta).matrix
            @ gate("rz", lam).matrix
        )
        assert np.allclose(rec, u, atol=1e-9)
        assert 0.0 <= theta <= np.pi + 1e-12


@given(
    st.floats(-np.pi, np.pi),
    st.floats(-np.pi, np.pi),
    st.floats(-np.pi, np.pi),
)
def test_synthesis_equivalence_property(theta, phi, lam):
    u = (
        gate("rz", phi).matrix
        @ gate("ry", theta).matrix
        @ gate("rz", lam).matrix
    )
    assert allclose_up_to_global_phase(_realize(synthesize_1q(u)), u)


@pytest.mark.parametrize(
    "name, expected_cost",
    [
        ("id", 0),
        ("z", 0),
        ("s", 0),
        ("t", 0),
        ("rz", 0),
        ("x", 1),
        ("y", 1),
        ("sx", 1),
        ("sxdg", 1),
        ("h", 1),
    ],
)
def test_special_case_costs(name, expected_cost):
    g = gate(name, 0.37) if name == "rz" else gate(name)
    assert physical_1q_cost(g.matrix) == expected_cost


def test_generic_unitary_costs_two_sx():
    u = gate("ry", 0.7).matrix
    assert physical_1q_cost(u) == 2
    assert allclose_up_to_global_phase(_realize(synthesize_1q(u)), u)


def test_rx_half_pi_costs_one():
    # The EnQode opening gate must be a single physical pulse.
    u = gate("rx", -np.pi / 2).matrix
    assert physical_1q_cost(u) == 1


def test_identity_synthesizes_to_nothing():
    assert synthesize_1q(np.eye(2)) == []
    assert synthesize_1q(1j * np.eye(2)) == []  # global phase only


def test_only_native_names_emitted():
    for seed in range(10):
        ops = synthesize_1q(random_unitary(1, seed=seed))
        assert {name for name, _ in ops} <= {"rz", "sx", "x"}


def test_rejects_non_unitary():
    with pytest.raises(TranspilerError):
        zyz_decompose(np.ones((2, 2)))
    with pytest.raises(TranspilerError):
        zyz_decompose(np.eye(4))


def test_angles_wrapped():
    ops = synthesize_1q(gate("rz", 11.0).matrix)  # 11 rad wraps
    for name, params in ops:
        assert name == "rz"
        assert -np.pi <= params[0] <= np.pi
