"""Tests for the figure-experiment harness (scaled-down single dataset).

These validate the *structural* claims each paper figure makes — EnQode's
zero variability, Baseline exactness, depth/gate reductions — on a small
MNIST-only configuration so the whole file stays in CI budget.
"""

import numpy as np
import pytest

from repro.evaluation import (
    ExperimentConfig,
    ExperimentContext,
    circuit_metrics_sweep,
    render_fig6,
    render_fig7,
    render_fig8a,
    render_fig9a,
    render_fig9b,
    run_fig6,
    run_fig7,
    run_fig8a,
    run_fig9a,
    run_fig9b,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(
        ExperimentConfig(
            datasets=("mnist",),
            samples_per_class=52,
            num_metric_samples=4,
            num_fidelity_samples=3,
            num_noisy_samples=1,
        )
    )


@pytest.fixture(scope="module")
def sweep(context):
    return circuit_metrics_sweep(context)


def test_fig6_enqode_shallower_with_zero_variance(context, sweep):
    results = run_fig6(context, sweep)["mnist"]
    assert results["enqode"]["depth"].std == 0.0
    assert results["enqode"]["total_gates"].std == 0.0
    assert results["enqode"]["depth"].mean * 10 < results["baseline"]["depth"].mean
    assert results["baseline"]["depth"].std > 0.0


def test_fig7_gate_reductions(context, sweep):
    results = run_fig7(context, sweep)["mnist"]
    for metric in ("one_qubit_gates", "two_qubit_gates"):
        assert results["enqode"][metric].std == 0.0
        assert (
            results["enqode"][metric].mean * 5
            < results["baseline"][metric].mean
        )


def test_fig8a_baseline_exact_enqode_high(context):
    results = run_fig8a(context)["mnist"]
    assert results["baseline"].mean == pytest.approx(1.0, abs=1e-6)
    assert 0.5 < results["enqode"].mean <= 1.0


def test_fig9a_compile_times_positive(context, sweep):
    results = run_fig9a(context, sweep)["mnist"]
    assert results["baseline"]["compile_time"].mean > 0
    assert results["enqode"]["compile_time"].mean > 0


def test_fig9b_offline_report(context):
    results = run_fig9b(context)["mnist"]
    assert results["num_clusters"] >= 1
    assert results["offline_total"] < 200.0  # the paper's bound
    assert results["online"].mean < results["offline_total"]


def test_renderers_produce_tables(context, sweep):
    assert "MNIST" in render_fig6(run_fig6(context, sweep))
    assert "1q gates" in render_fig7(run_fig7(context, sweep))
    assert "Baseline" in render_fig8a(run_fig8a(context))
    assert "std ratio" in render_fig9a(run_fig9a(context, sweep))
    assert "clusters" in render_fig9b(run_fig9b(context))


def test_stats_helpers():
    from repro.evaluation import Stats

    stats = Stats(values=[1.0, 2.0, 3.0])
    assert stats.mean == pytest.approx(2.0)
    assert stats.min == 1.0 and stats.max == 3.0
    row = stats.as_row()
    assert set(row) == {"mean", "std", "min", "max"}
    assert np.isnan(Stats().mean)
