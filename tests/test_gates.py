"""Unit tests for the gate library."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.quantum.gates import (
    STANDARD_GATES,
    VIRTUAL_GATE_NAMES,
    Gate,
    gate,
    unitary_gate,
)
from repro.utils.linalg import allclose_up_to_global_phase, is_unitary

PARAMETRIC = {
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "p": 1,
    "u": 3,
    "cp": 1,
    "crz": 1,
    "cry": 1,
    "rzz": 1,
}


def _example(name):
    arity = PARAMETRIC.get(name, 0)
    return gate(name, *([0.7321] * arity))


@pytest.mark.parametrize("name", sorted(STANDARD_GATES))
def test_every_gate_is_unitary(name):
    assert is_unitary(_example(name).matrix)


@pytest.mark.parametrize("name", sorted(STANDARD_GATES))
def test_inverse_composes_to_identity(name):
    g = _example(name)
    product = g.inverse().matrix @ g.matrix
    assert allclose_up_to_global_phase(product, np.eye(2**g.num_qubits))


@pytest.mark.parametrize("name", sorted(VIRTUAL_GATE_NAMES))
def test_virtual_gates_are_diagonal(name):
    g = _example(name)
    assert g.is_virtual
    off_diagonal = g.matrix - np.diag(np.diag(g.matrix))
    assert np.allclose(off_diagonal, 0.0)


def test_physical_gates_not_marked_virtual():
    for name in ("x", "sx", "h", "rx", "ry", "cx", "ecr"):
        assert not _example(name).is_virtual


def test_unknown_gate_raises():
    with pytest.raises(CircuitError):
        gate("nope")


def test_rz_convention():
    theta = 0.918
    expected = np.diag([np.exp(-0.5j * theta), np.exp(0.5j * theta)])
    assert np.allclose(gate("rz", theta).matrix, expected)


def test_cy_matrix_phases():
    cy = gate("cy").matrix
    assert cy[3, 2] == pytest.approx(1j)
    assert cy[2, 3] == pytest.approx(-1j)
    assert np.allclose(cy[:2, :2], np.eye(2))


def test_cry_pi_is_real_cy():
    cry = gate("cry", np.pi).matrix
    assert np.allclose(cry.imag, 0.0)
    assert cry[3, 2] == pytest.approx(1.0)
    assert cry[2, 3] == pytest.approx(-1.0)


def test_cy_equals_s_on_control_times_cry_pi():
    s_control = np.kron(gate("s").matrix, np.eye(2))
    assert allclose_up_to_global_phase(
        s_control @ gate("cry", np.pi).matrix, gate("cy").matrix
    )


def test_ecr_is_hermitian_involution():
    ecr = gate("ecr").matrix
    assert np.allclose(ecr, ecr.conj().T)
    assert np.allclose(ecr @ ecr, np.eye(4))


def test_sx_squared_is_x():
    sx = gate("sx").matrix
    assert allclose_up_to_global_phase(sx @ sx, gate("x").matrix)


def test_swap_action():
    swap = gate("swap").matrix
    vec = np.zeros(4)
    vec[1] = 1.0  # |01>
    assert np.allclose(swap @ vec, [0, 0, 1, 0])  # -> |10>


def test_gate_equality_and_hash():
    assert gate("rz", 0.5) == gate("rz", 0.5)
    assert gate("rz", 0.5) != gate("rz", 0.6)
    assert hash(gate("x")) == hash(gate("x"))


def test_gate_matrix_readonly():
    g = gate("h")
    with pytest.raises(ValueError):
        g.matrix[0, 0] = 5.0


def test_gate_shape_validation():
    with pytest.raises(CircuitError):
        Gate("bad", 2, (), np.eye(2))


def test_unitary_gate_accepts_unitary():
    u = unitary_gate(gate("h").matrix, label="had")
    assert u.name == "had"
    assert u.num_qubits == 1


def test_unitary_gate_rejects_nonunitary():
    with pytest.raises(CircuitError):
        unitary_gate(np.ones((2, 2)))


def test_unitary_gate_rejects_bad_shape():
    with pytest.raises(CircuitError):
        unitary_gate(np.eye(3))


def test_u_gate_parameterization():
    theta, phi, lam = 0.3, 1.1, -0.4
    u = gate("u", theta, phi, lam).matrix
    ref = (
        gate("rz", phi).matrix
        @ gate("ry", theta).matrix
        @ gate("rz", lam).matrix
    )
    assert allclose_up_to_global_phase(u, ref)


def test_repr_contains_name_and_params():
    assert "rz" in repr(gate("rz", 0.25))
    assert "0.25" in repr(gate("rz", 0.25))
