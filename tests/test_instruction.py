"""Unit tests for circuit instructions."""

import pytest

from repro.errors import CircuitError
from repro.quantum.gates import gate
from repro.quantum.instruction import Instruction


def test_arity_mismatch_rejected():
    with pytest.raises(CircuitError):
        Instruction(gate("cx"), (0,))


def test_duplicate_qubits_rejected():
    with pytest.raises(CircuitError):
        Instruction(gate("cx"), (1, 1))


def test_negative_qubits_rejected():
    with pytest.raises(CircuitError):
        Instruction(gate("x"), (-1,))


def test_remap():
    instr = Instruction(gate("cx"), (0, 2))
    remapped = instr.remap({0: 5, 2: 1})
    assert remapped.qubits == (5, 1)
    assert remapped.gate == instr.gate


def test_inverse_preserves_qubits():
    instr = Instruction(gate("rz", 0.3), (1,))
    inv = instr.inverse()
    assert inv.qubits == (1,)
    assert inv.gate.params == (-0.3,)


def test_name_and_virtual_passthrough():
    assert Instruction(gate("rz", 1.0), (0,)).is_virtual
    assert not Instruction(gate("sx"), (0,)).is_virtual
    assert Instruction(gate("sx"), (0,)).name == "sx"


def test_equality_and_hash():
    a = Instruction(gate("cx"), (0, 1))
    b = Instruction(gate("cx"), (0, 1))
    c = Instruction(gate("cx"), (1, 0))
    assert a == b
    assert a != c
    assert hash(a) == hash(b)


def test_iter_unpacking():
    g, qubits = Instruction(gate("h"), (3,))
    assert g.name == "h"
    assert qubits == (3,)
