"""End-to-end integration tests across the full stack.

One full pass of the paper's pipeline at 8 qubits: synthetic dataset ->
PCA -> offline cluster training -> online embedding -> transpiled circuits
-> ideal + noisy simulation, checking the paper's headline orderings.
"""

import numpy as np
import pytest

from repro import (
    BaselineStatePreparation,
    EnQodeConfig,
    EnQodeEncoder,
    state_fidelity,
)
from repro.quantum import DensityMatrixSimulator, simulate_statevector


@pytest.fixture(scope="module")
def pipeline(segment8, mnist_small):
    label = int(mnist_small.classes()[0])
    block = mnist_small.class_slice(label)
    encoder = EnQodeEncoder(segment8, EnQodeConfig(seed=3))
    encoder.fit(block)
    baseline = BaselineStatePreparation(segment8)
    return encoder, baseline, block


def test_full_pipeline_orderings(pipeline, segment8):
    encoder, baseline, block = pipeline
    sample = block[5]

    encoded = encoder.encode(sample)
    prepared = baseline.prepare(sample)

    # Fig. 6/7 orderings: EnQode is much cheaper, on every metric.
    enqode_metrics = encoded.metrics()
    baseline_metrics = prepared.metrics()
    assert enqode_metrics.depth * 10 < baseline_metrics.depth
    assert enqode_metrics.two_qubit_gates * 10 < baseline_metrics.two_qubit_gates
    assert enqode_metrics.one_qubit_gates * 5 < baseline_metrics.one_qubit_gates

    # Fig. 8a: Baseline is exact, EnQode approximate but high.
    baseline_ideal = state_fidelity(
        simulate_statevector(prepared.circuit), prepared.physical_target()
    )
    enqode_ideal = state_fidelity(
        simulate_statevector(encoded.circuit), encoded.physical_target()
    )
    assert baseline_ideal == pytest.approx(1.0)
    assert enqode_ideal > 0.6
    assert enqode_ideal == pytest.approx(encoded.ideal_fidelity, abs=1e-9)

    # Fig. 8b: under noise the ordering flips decisively.
    simulator = DensityMatrixSimulator(segment8.noise_model())
    baseline_noisy = state_fidelity(
        simulator.run(prepared.circuit), prepared.physical_target()
    )
    enqode_noisy = state_fidelity(
        simulator.run(encoded.circuit), encoded.physical_target()
    )
    assert enqode_noisy > 10 * baseline_noisy
    assert enqode_noisy > 0.3


def test_embedding_feeds_downstream_qml(pipeline):
    """The Fig. 1 workflow: embedded states drive a variational classifier."""
    from repro.qml import QMLClassifier

    encoder, _, block = pipeline
    states = [
        simulate_statevector(encoder.encode(x).circuit) for x in block[:6]
    ]
    labels = np.array([0, 1, 0, 1, 0, 1])
    model = QMLClassifier(8, num_layers=1, seed=0)
    model.fit(states, labels, num_steps=12)
    assert model.predict(states).shape == (6,)


def test_offline_models_reusable_across_samples(pipeline):
    encoder, _, block = pipeline
    first = encoder.encode(block[0])
    second = encoder.encode(block[1])
    # Same fixed ansatz, different parameters.
    assert not np.allclose(first.theta, second.theta)
    assert first.metrics().as_row() == second.metrics().as_row()
