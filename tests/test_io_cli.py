"""``python -m repro.io`` CLI: conversion round-trips and error paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io import wire
from repro.io.__main__ import main
from repro.io.qasm import from_qasm, save_qasm

from tests.conftest import random_circuit
from tests.test_io_qasm import assert_instructions_identical


@pytest.fixture()
def fixture_qasm(tmp_path):
    path = tmp_path / "fixture.qasm"
    save_qasm(random_circuit(num_qubits=4, depth=30, seed=42), path)
    return path


def test_qasm_wire_qasm_roundtrip_is_byte_identical(fixture_qasm, tmp_path):
    """dump | load round-trip: the reconverted text matches byte for byte."""
    wire_path = tmp_path / "fixture.wire"
    back_path = tmp_path / "roundtrip.qasm"
    assert main(["convert", str(fixture_qasm), str(wire_path)]) == 0
    assert wire_path.read_bytes()[:4] == wire.MAGIC
    assert main(["convert", str(wire_path), str(back_path), "--to", "qasm2"]) == 0
    assert back_path.read_text() == fixture_qasm.read_text()


def test_convert_to_qasm3_parses_back(fixture_qasm, tmp_path):
    out = tmp_path / "three.out"
    assert main(
        ["convert", str(fixture_qasm), str(out), "--to", "qasm3"]
    ) == 0
    text = out.read_text()
    assert text.startswith("OPENQASM 3.0;")
    assert_instructions_identical(
        from_qasm(fixture_qasm.read_text()), from_qasm(text)
    )


def test_info_reports_both_formats(fixture_qasm, tmp_path, capsys):
    assert main(["info", str(fixture_qasm)]) == 0
    assert "qasm" in capsys.readouterr().out
    wire_path = tmp_path / "fixture.wire"
    main(["convert", str(fixture_qasm), str(wire_path)])
    assert main(["info", str(wire_path)]) == 0
    out = capsys.readouterr().out
    assert "wire" in out and "gate-stream" in out


def test_template_bound_record_conversion_fails_cleanly(
    tmp_path, line4, capsys
):
    from repro.core.ansatz import EnQodeAnsatz
    from repro.transpile.template import ParametricTemplate

    template = ParametricTemplate(EnQodeAnsatz(4, 8), line4, 1)
    thetas = np.linspace(-1.0, 1.0, template.ansatz.num_parameters)
    blob = wire.dump_batch(template.bind_batch_ir(thetas[None, :]))
    path = tmp_path / "bound.wire"
    path.write_bytes(blob)
    # info works from the header alone...
    assert main(["info", str(path)]) == 0
    assert "template-batch" in capsys.readouterr().out
    # ...but conversion needs the template this process does not hold.
    assert main(["convert", str(path), str(tmp_path / "out.qasm")]) == 1
    assert "template" in capsys.readouterr().err


def test_unknown_extension_requires_explicit_format(fixture_qasm, tmp_path, capsys):
    assert main(
        ["convert", str(fixture_qasm), str(tmp_path / "out.xyz")]
    ) == 1
    assert "--to" in capsys.readouterr().err
