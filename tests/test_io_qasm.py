"""OpenQASM 2/3 interop: round-trip identity, gate table, error paths.

The load-bearing property everywhere: ``from_qasm(to_qasm(c, v))`` is
instruction-identical to ``c`` — same gate names, same qubit tuples,
parameter tuples equal to the last float bit (``==`` on tuples, not
allclose).  Swept over the full gate vocabulary, branch-cut Rz angles,
random circuits, Mottonen baselines, and real ``encode_batch`` outputs
at 4/6/8 qubits.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baseline import mottonen_circuit
from repro.core.ansatz import EnQodeAnsatz
from repro.errors import SerializationError
from repro.io.qasm import (
    GATE_SIGNATURES,
    format_float,
    from_qasm,
    load_qasm,
    save_qasm,
    to_qasm,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import STANDARD_GATES, unitary_gate
from repro.transpile.template import ParametricTemplate

from tests.conftest import random_circuit
from tests.test_template_batch import branch_cut_thetas

VERSIONS = (2, 3)


def assert_instructions_identical(a: QuantumCircuit, b: QuantumCircuit):
    """Gate-for-gate equality with float-bit-exact parameters."""
    assert a.num_qubits == b.num_qubits
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.gate.name == right.gate.name
        assert left.qubits == right.qubits
        assert left.gate.params == right.gate.params


def assert_roundtrip(circuit: QuantumCircuit, version: int):
    text = to_qasm(circuit, version=version)
    parsed = from_qasm(text)
    assert_instructions_identical(circuit, parsed)
    # The writer is deterministic, so a second trip reproduces the text.
    assert to_qasm(parsed, version=version) == text


# -- gate vocabulary ---------------------------------------------------------------


def test_gate_table_covers_the_registry():
    assert set(GATE_SIGNATURES) == set(STANDARD_GATES)
    for name, (arity, num_params) in GATE_SIGNATURES.items():
        gate_obj = STANDARD_GATES[name](*([0.5] * num_params))
        assert gate_obj.num_qubits == arity
        assert len(gate_obj.params) == num_params


@pytest.mark.parametrize("version", VERSIONS)
def test_every_registry_gate_roundtrips(version, rng):
    qc = QuantumCircuit(3)
    for name, (arity, num_params) in GATE_SIGNATURES.items():
        params = rng.uniform(-2 * math.pi, 2 * math.pi, num_params).tolist()
        qubits = (1,) if arity == 1 else (2, 0)
        qc.append(STANDARD_GATES[name](*params), qubits)
    assert_roundtrip(qc, version)


@pytest.mark.parametrize("version", VERSIONS)
def test_branch_cut_rz_angles_roundtrip_bit_exact(version):
    qc = QuantumCircuit(1)
    for base in (math.pi, -math.pi):
        for eps in (0.0, 1e-9, -1e-9, 1e-10, -1e-10):
            qc.rz(base + eps, 0)
    assert_roundtrip(qc, version)
    parsed = from_qasm(to_qasm(qc, version=version))
    angles = [instr.gate.params[0] for instr in parsed]
    expected = [instr.gate.params[0] for instr in qc]
    assert angles == expected  # exact, not approximate


@pytest.mark.parametrize("version", VERSIONS)
@pytest.mark.parametrize("seed", range(5))
def test_random_circuits_roundtrip(version, seed):
    qc = random_circuit(num_qubits=4, depth=40, seed=seed)
    assert_roundtrip(qc, version)


@pytest.mark.parametrize("version", VERSIONS)
def test_mottonen_baseline_roundtrips(version, rng):
    for num_qubits in (2, 3, 4):
        amplitudes = rng.uniform(0.05, 1.0, 2**num_qubits)
        assert_roundtrip(mottonen_circuit(amplitudes), version)


# -- encoder outputs ---------------------------------------------------------------


@pytest.mark.parametrize("optimization_level", (0, 1))
@pytest.mark.parametrize("num_qubits", (4, 6, 8))
def test_template_bound_circuits_roundtrip(
    num_qubits, optimization_level, rng, request
):
    """Bound-IR circuits (what encode_batch serves) survive both formats."""
    backend = request.getfixturevalue(
        "segment4" if num_qubits == 4 else "segment8"
    )
    if num_qubits == 6:
        backend = backend.reduced(range(6))
    ansatz = EnQodeAnsatz(num_qubits, 8)
    template = ParametricTemplate(ansatz, backend, optimization_level)
    thetas = branch_cut_thetas(ansatz.num_parameters, rng)[:4]
    bound = template.bind_batch(thetas)
    for result in bound:
        for version in VERSIONS:
            assert_roundtrip(result.circuit, version)


def test_real_encode_batch_outputs_roundtrip(segment4, rng):
    """End-to-end: fit, encode_batch, export, reparse — bit-identical."""
    from repro.core.config import EnQodeConfig
    from repro.core.encoder import EnQodeEncoder

    config = EnQodeConfig(
        num_qubits=4,
        max_clusters=2,
        offline_restarts=1,
        offline_max_iterations=25,
    )
    encoder = EnQodeEncoder(segment4, config)
    data = np.abs(rng.normal(size=(20, 16))) + 0.1
    encoder.fit(data)
    for sample in encoder.encode_batch(data[:5]):
        for version in VERSIONS:
            assert_roundtrip(sample.circuit, version)


# -- emitted gate definitions ------------------------------------------------------


def _unitary_up_to_phase(a: np.ndarray, b: np.ndarray) -> bool:
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(a[index]) < 1e-12:
        return False
    phase = b[index] / a[index]
    return np.allclose(a * phase, b, atol=1e-12)


@pytest.mark.parametrize(
    "name", sorted({"iswap", "ecr", "sxdg", "rzz"})
)
def test_emitted_gate_definitions_match_registry_matrices(name):
    """Parse each emitted def under a fresh name (forcing expansion into
    its body) and compare the resulting unitary with the registry gate."""
    from repro.io.qasm import _QASM3_DEFS

    definition = _QASM3_DEFS[name].replace(f"gate {name}", "gate custom_g")
    arity, num_params = GATE_SIGNATURES[name]
    params = "(0.7853981633974483)" if num_params else ""
    operands = "q[0], q[1]" if arity == 2 else "q[0]"
    text = (
        "OPENQASM 3.0;\n"
        f"{definition}\n"
        f"qubit[{arity}] q;\n"
        f"custom_g{params} {operands};\n"
    )
    parsed = from_qasm(text)
    reference = QuantumCircuit(arity)
    gate_params = (0.7853981633974483,) if num_params else ()
    reference.append(
        STANDARD_GATES[name](*gate_params), tuple(range(arity))
    )
    assert _unitary_up_to_phase(parsed.to_matrix(), reference.to_matrix())


# -- float formatting --------------------------------------------------------------


def test_format_float_is_repr_roundtrip_exact(rng):
    values = list(rng.uniform(-10, 10, 200))
    values += [math.pi, -math.pi, math.pi - 1e-9, 1e-300, -1e-300, 0.0, 1e22]
    for value in values:
        assert float(format_float(value)) == value
        assert "." in format_float(value).split("e")[0]


def test_format_float_rejects_non_finite():
    for bad in (math.inf, -math.inf, math.nan):
        with pytest.raises(SerializationError):
            format_float(bad)


# -- export blockers ---------------------------------------------------------------


def test_unitary_gate_export_raises_serialization_error(rng):
    qc = QuantumCircuit(1)
    qc.append(unitary_gate(np.eye(2), label="mystery"), (0,))
    with pytest.raises(SerializationError, match="mystery"):
        to_qasm(qc)


def test_generic_inverse_gate_export_raises():
    qc = QuantumCircuit(2)
    qc.append(STANDARD_GATES["iswap"]().inverse(), (0, 1))
    with pytest.raises(SerializationError, match="iswap_dg"):
        to_qasm(qc)


# -- reader: interchange syntax ----------------------------------------------------


def test_legacy_aliases_map_to_registry_gates():
    text = (
        "OPENQASM 2.0;\n"
        'include "qelib1.inc";\n'
        "qreg q[2];\n"
        "u1(0.25) q[0];\n"
        "u2(0.25, 0.5) q[0];\n"
        "u3(0.25, 0.5, 0.75) q[0];\n"
        "cu1(0.25) q[0], q[1];\n"
        "CX q[0], q[1];\n"
        "U(0.1, 0.2, 0.3) q[1];\n"
    )
    parsed = from_qasm(text)
    names = [instr.gate.name for instr in parsed]
    assert names == ["p", "u", "u", "cp", "cx", "u"]
    assert parsed[0].gate.params == (0.25,)
    assert parsed[1].gate.params == (math.pi / 2.0, 0.25, 0.5)


def test_register_broadcast():
    text = (
        "OPENQASM 2.0;\nqreg a[3];\nqreg b[3];\n"
        "h a;\ncx a, b;\ncx a[0], b;\n"
    )
    parsed = from_qasm(text)
    assert parsed.num_qubits == 6
    assert [i.gate.name for i in parsed] == ["h"] * 3 + ["cx"] * 6
    assert [i.qubits for i in parsed[3:6]] == [(0, 3), (1, 4), (2, 5)]
    assert [i.qubits for i in parsed[6:]] == [(0, 3), (0, 4), (0, 5)]


def test_parameter_expressions_and_constants():
    text = (
        "OPENQASM 2.0;\nqreg q[1];\n"
        "rz(pi/2) q[0];\nrz(-pi) q[0];\nrz(2*pi - pi/4) q[0];\n"
        "rz(sin(1.5)) q[0];\nrz(3^2) q[0];\nrz((1+2)*0.5) q[0];\n"
    )
    angles = [i.gate.params[0] for i in from_qasm(text)]
    assert angles == [
        math.pi / 2,
        -math.pi,
        2 * math.pi - math.pi / 4,
        math.sin(1.5),
        9.0,
        1.5,
    ]


def test_user_gate_definition_expansion_and_barrier():
    text = (
        "OPENQASM 2.0;\n"
        "gate flip(theta) a, b { barrier a, b; rx(theta) a; cx a, b; }\n"
        "qreg q[2];\n"
        "flip(0.5) q[0], q[1];\n"
        "barrier q;\n"
    )
    parsed = from_qasm(text)
    assert [i.gate.name for i in parsed] == ["rx", "cx"]
    assert parsed[0].gate.params == (0.5,)


def test_qasm3_register_syntax_and_comments():
    text = (
        "// a comment\nOPENQASM 3.0;\n"
        'include "stdgates.inc";\n'
        "qubit[2] q; /* block\ncomment */ bit[2] c;\n"
        "h q[0];\ncx q[0], q[1];\n"
    )
    parsed = from_qasm(text)
    assert parsed.num_qubits == 2
    assert [i.gate.name for i in parsed] == ["h", "cx"]


# -- reader: rejection paths -------------------------------------------------------


def test_versions_are_gated_through_the_shared_checker():
    with pytest.raises(SerializationError) as err:
        from_qasm("OPENQASM 2.1;\nqreg q[1];\nh q[0];\n")
    assert "2.1" in str(err.value)
    with pytest.raises(SerializationError, match="OPENQASM"):
        from_qasm("qreg q[1];\nh q[0];\n")


@pytest.mark.parametrize(
    "bad",
    [
        "OPENQASM 2.0;\nqreg q[1];\nmystery q[0];\n",
        "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];\n",
        "OPENQASM 2.0;\nqreg q[1];\nreset q[0];\n",
        "OPENQASM 2.0;\nh q[0];\n",
        "OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n",
        "OPENQASM 2.0;\nqreg q[2];\nh q[5];\n",
        "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[0];\n",
        "OPENQASM 2.0;\nqreg q[1];\nrz() q[0];\n",
        "OPENQASM 2.0;\n",
    ],
)
def test_malformed_sources_raise_serialization_error(bad):
    with pytest.raises(SerializationError):
        from_qasm(bad)


def test_save_and_load_roundtrip(tmp_path, rng):
    qc = random_circuit(num_qubits=3, depth=25, seed=9)
    path = tmp_path / "circuit.qasm"
    save_qasm(qc, path, version=3)
    assert_instructions_identical(qc, load_qasm(path))
