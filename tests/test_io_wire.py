"""Binary wire format: array-equal round-trips, versioning, corruption.

The acceptance property: decoding a template-bound record — with or
without the inlined synthesis section — yields a
:class:`BoundCircuitBatch` whose arrays and simulated statevectors are
``np.array_equal`` to the sender's in-memory IR (rebinding is
deterministic, so fingerprint + thetas is a complete description).
Gate-stream records round-trip instruction-identical with float-bit
parameters, and every malformed blob fails as a
:class:`SerializationError` through the shared
:func:`repro.core.serialization.check_schema_version` gate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ansatz import EnQodeAnsatz
from repro.errors import SerializationError
from repro.io import wire
from repro.transpile.bound import BoundCircuit
from repro.transpile.template import ParametricTemplate

from tests.conftest import random_circuit
from tests.test_io_qasm import assert_instructions_identical
from tests.test_template_batch import branch_cut_thetas


@pytest.fixture(scope="module")
def template(request):
    backend = request.getfixturevalue("line4")
    return ParametricTemplate(EnQodeAnsatz(4, 8), backend, 1)


def _bound(template, rng, batch=8):
    thetas = branch_cut_thetas(template.ansatz.num_parameters, rng)[:batch]
    return template.bind_batch_ir(thetas)


def assert_batches_equal(a, b):
    assert np.array_equal(a.thetas, b.thetas)
    assert len(a.packed) == len(b.packed)
    for left, right in zip(a.packed, b.packed):
        assert np.array_equal(left.angles, right.angles, equal_nan=True)
        assert np.array_equal(left.kinds, right.kinds)
        assert left.specials == right.specials
    for row in range(a.batch_size):
        assert np.array_equal(
            a.statevector_row(row).data, b.statevector_row(row).data
        )


# -- template-bound records --------------------------------------------------------


@pytest.mark.parametrize("include_synthesis", (False, True))
def test_batch_roundtrip_is_array_equal(template, rng, include_synthesis):
    bound = _bound(template, rng)
    blob = wire.dump_batch(bound, include_synthesis=include_synthesis)
    decoded = wire.load(blob, template=template)
    assert_batches_equal(bound, decoded)


@pytest.mark.parametrize("optimization_level", (0, 1))
@pytest.mark.parametrize("num_qubits", (4, 6, 8))
@pytest.mark.parametrize("batch", (1, 64))
def test_roundtrip_sweep_over_qubits_levels_batches(
    num_qubits, optimization_level, batch, rng, request
):
    backend = request.getfixturevalue(
        "segment4" if num_qubits == 4 else "segment8"
    )
    if num_qubits == 6:
        backend = backend.reduced(range(6))
    ansatz = EnQodeAnsatz(num_qubits, 8)
    template = ParametricTemplate(ansatz, backend, optimization_level)
    thetas = rng.uniform(-2 * np.pi, 2 * np.pi, (batch, ansatz.num_parameters))
    bound = template.bind_batch_ir(thetas)
    decoded = wire.load(wire.dump_batch(bound), template=template)
    assert_batches_equal(bound, decoded)


def test_degenerate_angles_with_synthesis_section(template):
    """All-zero and half-pi thetas exercise dropped/special packed rows."""
    num_params = template.ansatz.num_parameters
    thetas = np.vstack(
        [
            np.zeros(num_params),
            np.full(num_params, np.pi / 2.0),
            np.full(num_params, np.pi),
        ]
    )
    bound = template.bind_batch_ir(thetas)
    blob = wire.dump_batch(bound, include_synthesis=True)
    assert_batches_equal(bound, wire.load(blob, template=template))


def test_single_bound_circuit_dumps_compact(template, rng):
    bound = _bound(template, rng)
    circuit = bound.circuit(3)
    blob = wire.dump_circuit(circuit)
    decoded = wire.load(blob, template=template)
    assert decoded.batch_size == 1
    assert np.array_equal(
        decoded.statevector_row(0).data, bound.statevector_row(3).data
    )
    # The compact record is a fingerprint + one theta row — far below
    # even a per-circuit instruction stream.
    assert len(blob) < len(wire.dump_circuit(circuit, gate_stream=True))


def test_take_subsets_scattered_rows(template, rng):
    bound = _bound(template, rng)
    rows = [5, 0, 3]
    subset = bound.take(rows)
    assert subset.batch_size == 3
    for i, row in enumerate(rows):
        assert np.array_equal(
            subset.statevector_row(i).data, bound.statevector_row(row).data
        )
        assert_instructions_identical(
            subset.circuit(i).materialize(), bound.circuit(row).materialize()
        )
    with pytest.raises(Exception):
        bound.take([99])


def test_dump_circuits_groups_shared_batch_rows(template, rng):
    bound = _bound(template, rng)
    circuits = [bound.circuit(row) for row in (2, 4, 6)]
    blob = wire.dump_circuits(circuits)
    assert wire.describe(blob)["kind"] == "template-batch"
    decoded = wire.load(blob, template=template)
    for i, row in enumerate((2, 4, 6)):
        assert np.array_equal(
            decoded.statevector_row(i).data, bound.statevector_row(row).data
        )


def test_fingerprint_identity_and_sensitivity(template, line4, segment4):
    same = ParametricTemplate(EnQodeAnsatz(4, 8), line4, 1)
    assert same.fingerprint == template.fingerprint
    assert len(template.fingerprint) == 16
    other_level = ParametricTemplate(EnQodeAnsatz(4, 8), line4, 0)
    other_layers = ParametricTemplate(EnQodeAnsatz(4, 6), line4, 1)
    other_backend = ParametricTemplate(EnQodeAnsatz(4, 8), segment4, 1)
    fingerprints = {
        template.fingerprint,
        other_level.fingerprint,
        other_layers.fingerprint,
        other_backend.fingerprint,
    }
    assert len(fingerprints) == 4


# -- gate-stream records -----------------------------------------------------------


def test_gate_stream_roundtrip_instruction_identical(rng):
    for seed in range(4):
        circuit = random_circuit(num_qubits=4, depth=30, seed=seed)
        decoded = wire.load(wire.dump_circuit(circuit))
        assert_instructions_identical(circuit, decoded)
        assert decoded.name == circuit.name


def test_gate_stream_batch_and_empty(rng):
    circuits = [random_circuit(3, 20, seed) for seed in range(3)]
    decoded = wire.load(wire.dump_circuits(circuits, gate_stream=True))
    assert len(decoded) == 3
    for original, back in zip(circuits, decoded):
        assert_instructions_identical(original, back)
    assert wire.load(wire.dump_circuits([])) == []


def test_materialized_bound_circuit_as_gate_stream(template, rng):
    bound = _bound(template, rng)
    circuit = bound.circuit(0)
    decoded = wire.load(wire.dump_circuit(circuit, gate_stream=True))
    assert_instructions_identical(circuit.materialize(), decoded)
    assert np.array_equal(
        decoded.to_matrix() @ np.eye(16)[:, 0],
        bound.statevector_row(0).data,
    )


def test_unitary_gate_has_no_wire_code(rng):
    from repro.quantum.circuit import QuantumCircuit
    from repro.quantum.gates import unitary_gate

    qc = QuantumCircuit(1)
    qc.append(unitary_gate(np.eye(2), label="mystery"), (0,))
    with pytest.raises(SerializationError, match="mystery"):
        wire.dump_circuit(qc)


# -- versioning and corruption -----------------------------------------------------


def test_bad_magic_rejected(template, rng):
    blob = bytearray(wire.dump_batch(_bound(template, rng)))
    blob[:4] = b"NOPE"
    with pytest.raises(SerializationError, match="magic"):
        wire.load(bytes(blob), template=template)


def test_version_mismatch_names_found_and_expected(template, rng):
    blob = bytearray(wire.dump_batch(_bound(template, rng)))
    blob[4] = 99
    with pytest.raises(SerializationError) as err:
        wire.load(bytes(blob), template=template)
    assert "99" in str(err.value)
    assert str(wire.WIRE_SCHEMA_VERSION) in str(err.value)


def test_unknown_kind_rejected(template, rng):
    blob = bytearray(wire.dump_batch(_bound(template, rng)))
    blob[5] = 200
    with pytest.raises(SerializationError, match="kind"):
        wire.load(bytes(blob), template=template)


def test_truncation_and_trailing_garbage_rejected(template, rng):
    blob = wire.dump_batch(_bound(template, rng))
    with pytest.raises(SerializationError, match="truncated"):
        wire.load(blob[: len(blob) // 2], template=template)
    with pytest.raises(SerializationError, match="trailing"):
        wire.load(blob + b"xx", template=template)


def test_template_required_and_fingerprint_checked(template, line4, rng):
    blob = wire.dump_batch(_bound(template, rng))
    with pytest.raises(SerializationError, match="template"):
        wire.load(blob)
    mismatched = ParametricTemplate(EnQodeAnsatz(4, 6), line4, 1)
    with pytest.raises(SerializationError, match="fingerprint|template"):
        wire.load(blob, template=mismatched)
    resolved = wire.load(
        blob,
        template_resolver=lambda fp: template
        if fp == template.fingerprint
        else None,
    )
    assert resolved.batch_size == 8


def test_unknown_gate_code_rejected(rng):
    circuit = random_circuit(2, 5, seed=1)
    blob = bytearray(wire.dump_circuit(circuit))
    # First instruction's gate code sits right after the body header.
    offset = 6 + 4 + len(circuit.name.encode()) + 4
    blob[offset] = 250
    with pytest.raises(SerializationError, match="code"):
        wire.load(bytes(blob))


# -- service integration -----------------------------------------------------------


@pytest.fixture(scope="module")
def served(request):
    """A tiny fitted service plus one flushed batch of responses."""
    from repro.core.config import EnQodeConfig
    from repro.core.encoder import EnQodeEncoder
    from repro.service import EncodingService

    segment4 = request.getfixturevalue("segment4")
    rng = np.random.default_rng(77)
    config = EnQodeConfig(
        num_qubits=4,
        max_clusters=2,
        offline_restarts=1,
        offline_max_iterations=25,
    )
    encoder = EnQodeEncoder(segment4, config)
    data = np.abs(rng.normal(size=(20, 16))) + 0.1
    encoder.fit(data)
    service = EncodingService()
    service.register("cls", encoder)
    for row in data[:6]:
        service.submit(row, key="cls")
    responses = service.flush()
    return service, responses


def test_service_export_wire_rehydrates_array_equal(served):
    service, responses = served
    blob = service.export_wire(responses)
    summary = wire.describe(blob)
    assert summary["kind"] == "template-batch"
    assert summary["num_circuits"] == len(responses)
    batch = service.registry.rehydrate_wire(blob)
    for row, response in enumerate(responses):
        assert isinstance(response.circuit, BoundCircuit)
        assert np.array_equal(
            batch.statevector_row(row).data,
            response.circuit.ir_statevector().data,
        )


def test_response_to_wire_and_to_qasm(served):
    from repro.io.qasm import from_qasm

    service, responses = served
    response = responses[0]
    decoded = service.registry.rehydrate_wire(response.to_wire())
    assert np.array_equal(
        decoded.statevector_row(0).data,
        response.circuit.ir_statevector().data,
    )
    for version, text in zip((2, 3), (
        response.to_qasm(version=2), response.to_qasm(version=3)
    )):
        assert text.startswith(f"OPENQASM {version}.0;")
        assert_instructions_identical(
            response.circuit.materialize(), from_qasm(text)
        )


def test_rehydrate_unknown_fingerprint_names_known_ones(served):
    from repro.service import EncoderRegistry

    _, responses = served
    empty = EncoderRegistry()
    with pytest.raises(SerializationError, match="fingerprint"):
        empty.rehydrate_wire(responses[0].to_wire())


def test_rehydrate_gate_stream_needs_no_template(served):
    service, responses = served
    circuit = responses[0].circuit.materialize()
    decoded = service.registry.rehydrate_wire(wire.dump_circuit(circuit))
    assert_instructions_identical(circuit, decoded)
