"""Unit tests for qubit layouts."""

import pytest

from repro.errors import TranspilerError
from repro.transpile import Layout


def test_trivial_layout():
    layout = Layout.trivial(3)
    assert [layout.physical(i) for i in range(3)] == [0, 1, 2]
    assert layout.logical(1) == 1


def test_non_injective_rejected():
    with pytest.raises(TranspilerError):
        Layout({0: 1, 1: 1})


def test_swap_physical_updates_both_directions():
    layout = Layout({0: 0, 1: 1})
    layout.swap_physical(0, 1)
    assert layout.physical(0) == 1
    assert layout.physical(1) == 0
    assert layout.logical(0) == 1


def test_swap_with_empty_position():
    layout = Layout({0: 0})  # physical 1 is an ancilla
    layout.swap_physical(0, 1)
    assert layout.physical(0) == 1
    assert layout.logical(0) is None


def test_missing_logical_raises():
    with pytest.raises(TranspilerError):
        Layout({0: 0}).physical(5)


def test_copy_is_independent():
    layout = Layout({0: 0, 1: 1})
    copy = layout.copy()
    copy.swap_physical(0, 1)
    assert layout.physical(0) == 0
    assert copy.physical(0) == 1


def test_equality_and_dict_roundtrip():
    layout = Layout({0: 2, 1: 0})
    assert Layout(layout.as_dict()) == layout
    assert layout.num_logical == 2
