"""Unit tests for measurement sampling and readout error."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.quantum import (
    Counts,
    DensityMatrix,
    QuantumCircuit,
    Statevector,
    apply_readout_error,
    backend_readout_errors,
    sample_counts,
    simulate_statevector,
)


def test_deterministic_state_samples_one_outcome():
    counts = sample_counts(Statevector.zero_state(3), shots=100, seed=0)
    assert counts == {"000": 100}
    assert counts.shots == 100
    assert counts.most_frequent() == "000"


def test_bell_state_sampling_statistics():
    psi = simulate_statevector(QuantumCircuit(2).h(0).cx(0, 1))
    counts = sample_counts(psi, shots=4000, seed=1)
    assert set(counts) == {"00", "11"}
    assert abs(counts.probability("00") - 0.5) < 0.05


def test_bitstring_order_qubit0_leftmost():
    psi = simulate_statevector(QuantumCircuit(2).x(0))
    counts = sample_counts(psi, shots=10, seed=0)
    assert counts == {"10": 10}


def test_density_matrix_sampling():
    rho = DensityMatrix(np.diag([0.25, 0.75]))
    counts = sample_counts(rho, shots=4000, seed=2)
    assert abs(counts.probability("1") - 0.75) < 0.05


def test_seeded_sampling_reproducible():
    psi = simulate_statevector(QuantumCircuit(2).h(0).h(1))
    a = sample_counts(psi, shots=100, seed=5)
    b = sample_counts(psi, shots=100, seed=5)
    assert a == b


def test_expectation_z_from_counts():
    counts = Counts({"00": 75, "10": 25})
    assert counts.expectation_z(0) == pytest.approx(0.5)
    assert counts.expectation_z(1) == pytest.approx(1.0)


def test_readout_error_flips_probabilities():
    probs = np.array([1.0, 0.0])
    flipped = apply_readout_error(probs, [0.1])
    assert np.allclose(flipped, [0.9, 0.1])


def test_readout_error_multi_qubit():
    probs = np.zeros(4)
    probs[0] = 1.0  # |00>
    noisy = apply_readout_error(probs, [0.1, 0.2])
    assert noisy[0] == pytest.approx(0.9 * 0.8)
    assert noisy[3] == pytest.approx(0.1 * 0.2)
    assert noisy.sum() == pytest.approx(1.0)


def test_readout_error_length_check():
    with pytest.raises(SimulationError):
        apply_readout_error(np.array([0.5, 0.5]), [0.1, 0.1])


def test_sampling_with_readout_error():
    counts = sample_counts(
        Statevector.zero_state(1), shots=5000, seed=3, readout_errors=[0.1]
    )
    assert abs(counts.probability("1") - 0.1) < 0.02


def test_invalid_shots_rejected():
    with pytest.raises(SimulationError):
        sample_counts(Statevector.zero_state(1), shots=0)


def test_unnormalized_state_rejected():
    with pytest.raises(SimulationError):
        sample_counts(np.array([1.0, 1.0]))


def test_backend_readout_errors(segment4):
    errors = backend_readout_errors(segment4)
    assert len(errors) == 4
    assert all(0 < e < 1 for e in errors)


def test_empty_counts_guards():
    with pytest.raises(SimulationError):
        Counts().most_frequent()
    assert Counts().expectation_z(0) == 0.0
