"""Unit tests for circuit metrics and schedule durations."""

import pytest

from repro.quantum import QuantumCircuit
from repro.transpile import circuit_metrics, schedule_duration


def test_counts_exclude_virtual():
    qc = QuantumCircuit(2)
    qc.rz(0.1, 0).sx(0).rz(0.2, 0).ecr(0, 1).x(1).rz(0.3, 1)
    metrics = circuit_metrics(qc)
    assert metrics.one_qubit_gates == 2  # sx + x
    assert metrics.two_qubit_gates == 1
    assert metrics.total_gates == 3
    assert metrics.virtual_gates == 3
    assert metrics.counts == {"sx": 1, "x": 1, "ecr": 1}


def test_depth_is_physical_depth():
    qc = QuantumCircuit(1).rz(0.1, 0).sx(0).rz(0.2, 0).sx(0).rz(0.3, 0)
    assert circuit_metrics(qc).depth == 2


def test_as_row_keys():
    row = circuit_metrics(QuantumCircuit(1).sx(0)).as_row()
    assert set(row) == {
        "depth",
        "total_gates",
        "one_qubit_gates",
        "two_qubit_gates",
    }


def test_schedule_duration_serial_vs_parallel(segment4):
    sx_time = segment4.gate_calibration("sx", (0,)).duration
    serial = QuantumCircuit(4).sx(0).sx(0)
    parallel = QuantumCircuit(4).sx(0).sx(1)
    assert schedule_duration(serial, segment4) == pytest.approx(2 * sx_time)
    assert schedule_duration(parallel, segment4) == pytest.approx(sx_time)


def test_schedule_duration_virtual_gates_free(segment4):
    qc = QuantumCircuit(4).rz(0.4, 0).rz(1.2, 0)
    assert schedule_duration(qc, segment4) == 0.0


def test_schedule_duration_two_qubit_sync(segment4):
    qc = QuantumCircuit(4).sx(0).ecr(0, 1)
    sx_time = segment4.gate_calibration("sx", (0,)).duration
    ecr_time = segment4.gate_calibration("ecr", (0, 1)).duration
    assert schedule_duration(qc, segment4) == pytest.approx(sx_time + ecr_time)
