"""Unit tests for exact Mottonen state preparation."""

import numpy as np
import pytest

from repro.baseline import mottonen_circuit
from repro.quantum import (
    random_real_amplitudes,
    random_statevector,
    simulate_statevector,
)


@pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 8])
def test_real_amplitudes_prepared_exactly(n):
    for seed in range(3):
        target = random_real_amplitudes(2**n, seed=seed)
        psi = simulate_statevector(mottonen_circuit(target))
        assert abs(np.vdot(psi.data, target)) ** 2 == pytest.approx(1.0)


@pytest.mark.parametrize("n", [1, 2, 3, 5])
def test_complex_amplitudes_prepared_exactly(n):
    target = random_statevector(n, seed=n).data
    psi = simulate_statevector(mottonen_circuit(target))
    assert abs(np.vdot(psi.data, target)) ** 2 == pytest.approx(1.0)


def test_negative_amplitudes_preserved():
    target = np.array([0.5, -0.5, 0.5, -0.5])
    psi = simulate_statevector(mottonen_circuit(target))
    # Not just |amplitudes| — the signs must match (up to global phase).
    overlap = np.vdot(psi.data, target)
    assert abs(overlap) ** 2 == pytest.approx(1.0)


def test_basis_states_are_cheap():
    basis = np.zeros(256)
    basis[0] = 1.0
    dense = random_real_amplitudes(256, seed=0)
    assert len(mottonen_circuit(basis)) < len(mottonen_circuit(dense))


def test_unnormalized_input_normalized():
    target = np.array([3.0, 0.0, 0.0, 4.0])
    psi = simulate_statevector(mottonen_circuit(target))
    assert abs(np.vdot(psi.data, target / 5.0)) ** 2 == pytest.approx(1.0)


def test_uniform_superposition():
    target = np.ones(8) / np.sqrt(8)
    psi = simulate_statevector(mottonen_circuit(target))
    assert abs(np.vdot(psi.data, target)) ** 2 == pytest.approx(1.0)


def test_gate_vocabulary():
    qc = mottonen_circuit(random_real_amplitudes(32, seed=2))
    assert set(qc.count_ops()) <= {"ry", "rz", "cx"}
