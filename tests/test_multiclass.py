"""Unit tests for per-class EnQode training."""

import numpy as np
import pytest

from repro.core import EnQodeConfig, PerClassEnQode
from repro.data import prepare_embedding_dataset
from repro.errors import OptimizationError


@pytest.fixture(scope="module")
def toy_dataset():
    """Two classes of clusterable 16-dim vectors via the real pipeline."""
    rng = np.random.default_rng(0)
    images = []
    labels = []
    prototypes = rng.normal(size=(2, 40))
    for label in (0, 1):
        block = prototypes[label] + 0.05 * rng.normal(size=(40, 40))
        images.append(np.abs(block))
        labels.extend([label] * 40)
    return prepare_embedding_dataset(
        "toy", np.concatenate(images), np.asarray(labels), num_features=16
    )


@pytest.fixture(scope="module")
def fitted(segment4, toy_dataset):
    model = PerClassEnQode(
        segment4,
        EnQodeConfig(
            num_qubits=4,
            num_layers=4,
            offline_restarts=3,
            offline_max_iterations=400,
            seed=2,
        ),
    )
    reports = model.fit(toy_dataset)
    return model, reports


def test_fit_trains_every_class(fitted):
    model, reports = fitted
    assert model.classes() == [0, 1]
    assert set(reports) == {0, 1}
    for report in reports.values():
        assert report.num_clusters >= 1


def test_encode_with_label(fitted, toy_dataset):
    model, _ = fitted
    sample = toy_dataset.class_slice(0)[0]
    encoded = model.encode(sample, 0)
    assert 0 < encoded.ideal_fidelity <= 1


def test_encode_unknown_label_rejected(fitted, toy_dataset):
    model, _ = fitted
    with pytest.raises(OptimizationError):
        model.encode(toy_dataset.amplitudes[0], 9)


def test_encode_auto_routes_to_right_class(fitted, toy_dataset):
    model, _ = fitted
    for label in (0, 1):
        sample = toy_dataset.class_slice(label)[1]
        auto = model.encode_auto(sample)
        manual = model.encode(sample, label)
        # Auto-routing should reach (at least) the labelled fidelity.
        assert auto.ideal_fidelity >= manual.ideal_fidelity - 0.05


def test_encode_auto_before_fit_rejected(segment4):
    model = PerClassEnQode(segment4, EnQodeConfig(num_qubits=4))
    with pytest.raises(OptimizationError):
        model.encode_auto(np.ones(16))


def test_total_offline_time(fitted):
    model, reports = fitted
    total = model.total_offline_time()
    assert total == pytest.approx(
        sum(r.total_time for r in reports.values()), rel=1e-6
    )
