"""Unit tests for per-class EnQode training and its auto-routing."""

import numpy as np
import pytest

from repro.core import EnQodeConfig, PerClassEnQode, nearest_class
from repro.data import prepare_embedding_dataset
from repro.errors import OptimizationError


@pytest.fixture(scope="module")
def toy_dataset():
    """Two classes of clusterable 16-dim vectors via the real pipeline."""
    rng = np.random.default_rng(0)
    images = []
    labels = []
    prototypes = rng.normal(size=(2, 40))
    for label in (0, 1):
        block = prototypes[label] + 0.05 * rng.normal(size=(40, 40))
        images.append(np.abs(block))
        labels.extend([label] * 40)
    return prepare_embedding_dataset(
        "toy", np.concatenate(images), np.asarray(labels), num_features=16
    )


@pytest.fixture(scope="module")
def fitted(segment4, toy_dataset):
    model = PerClassEnQode(
        segment4,
        EnQodeConfig(
            num_qubits=4,
            num_layers=4,
            offline_restarts=3,
            offline_max_iterations=400,
            seed=2,
        ),
    )
    reports = model.fit(toy_dataset)
    return model, reports


def test_fit_trains_every_class(fitted):
    model, reports = fitted
    assert model.classes() == [0, 1]
    assert set(reports) == {0, 1}
    for report in reports.values():
        assert report.num_clusters >= 1


def test_encode_with_label(fitted, toy_dataset):
    model, _ = fitted
    sample = toy_dataset.class_slice(0)[0]
    encoded = model.encode(sample, 0)
    assert 0 < encoded.ideal_fidelity <= 1


def test_encode_unknown_label_rejected(fitted, toy_dataset):
    model, _ = fitted
    with pytest.raises(OptimizationError):
        model.encode(toy_dataset.amplitudes[0], 9)


def test_encode_auto_routes_to_right_class(fitted, toy_dataset):
    model, _ = fitted
    for label in (0, 1):
        sample = toy_dataset.class_slice(label)[1]
        auto = model.encode_auto(sample)
        manual = model.encode(sample, label)
        # Auto-routing should reach (at least) the labelled fidelity.
        assert auto.ideal_fidelity >= manual.ideal_fidelity - 0.05


def test_encode_auto_selects_best_overlap_class(fitted, toy_dataset):
    """The routed class is the one with the maximal best-center overlap.

    For unit vectors ``||x - c||^2 = 2 - 2<x, c>``, so the nearest-center
    rule picks the class whose best cluster center has the largest
    signed overlap ``<x, c>`` — the closest-fidelity proxy the
    deployment workflow relies on (fidelity is the overlap squared).
    """
    model, _ = fitted
    for label in (0, 1):
        sample = toy_dataset.class_slice(label)[2]
        unit = sample / np.linalg.norm(sample)
        per_class_best = {
            cls: max(
                float(np.dot(unit, center))
                for center in encoder.cluster_centers()
            )
            for cls, encoder in model.encoders.items()
        }
        routed = nearest_class(sample, model.encoders)
        assert per_class_best[routed] == max(per_class_best.values())
        # encode_auto lands on that same class's models.
        encoded = model.encode_auto(sample)
        routed_encoder = model.encoders[routed]
        assert encoded.cluster_index < len(routed_encoder.cluster_models)
        manual = routed_encoder.encode(sample)
        assert encoded.ideal_fidelity == pytest.approx(
            manual.ideal_fidelity, abs=1e-12
        )
        assert encoded.cluster_index == manual.cluster_index


def test_nearest_class_tie_breaks_to_first_registered(fitted):
    """Registration order decides exact ties (deterministic routing)."""
    model, _ = fitted
    # Route one of class 1's own cluster centers through a dict that
    # contains the same encoder twice under different labels.
    center = model.encoders[1].cluster_centers()[0]
    duplicated = {7: model.encoders[1], 8: model.encoders[1]}
    assert nearest_class(center, duplicated) == 7


def test_nearest_class_input_validation(fitted):
    model, _ = fitted
    with pytest.raises(OptimizationError):
        nearest_class(np.ones(16), {})
    with pytest.raises(OptimizationError):
        nearest_class(np.zeros(16), model.encoders)


def test_encode_auto_matches_service_registry_routing(fitted, toy_dataset):
    """PerClassEnQode and the service registry make identical decisions."""
    from repro.service import EncoderRegistry

    model, _ = fitted
    registry = EncoderRegistry.from_per_class(model)
    assert registry.keys() == list(model.encoders)
    for label in (0, 1):
        sample = toy_dataset.class_slice(label)[3]
        assert registry.route(sample) == nearest_class(sample, model.encoders)


def test_encode_auto_before_fit_rejected(segment4):
    model = PerClassEnQode(segment4, EnQodeConfig(num_qubits=4))
    with pytest.raises(OptimizationError):
        model.encode_auto(np.ones(16))


def test_total_offline_time(fitted):
    model, reports = fitted
    total = model.total_offline_time()
    assert total == pytest.approx(
        sum(r.total_time for r in reports.values()), rel=1e-6
    )
