"""Unit tests for Gray-code multiplexed rotations."""

import numpy as np
import pytest

from repro.baseline import (
    append_multiplexed_rotation,
    gray_code,
    multiplexed_angles,
    multiplexed_rotation_matrix,
)
from repro.errors import StatePreparationError
from repro.quantum import QuantumCircuit
from repro.utils.linalg import allclose_up_to_global_phase


def test_gray_code_sequence():
    assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]


def test_gray_code_neighbors_differ_by_one_bit():
    for i in range(31):
        diff = gray_code(i) ^ gray_code(i + 1)
        assert bin(diff).count("1") == 1


@pytest.mark.parametrize("axis", ["ry", "rz"])
@pytest.mark.parametrize("num_controls", [0, 1, 2, 3])
def test_multiplexor_matches_block_diagonal(axis, num_controls, rng):
    alpha = rng.uniform(-3, 3, 2**num_controls)
    qc = QuantumCircuit(num_controls + 1)
    append_multiplexed_rotation(
        qc,
        axis,
        alpha,
        target=num_controls,
        controls=tuple(range(num_controls)),
        prune_tol=0.0,
    )
    assert allclose_up_to_global_phase(
        qc.to_matrix(), multiplexed_rotation_matrix(axis, alpha)
    )


def test_pruning_preserves_semantics_for_sparse_angles():
    alpha = np.zeros(8)
    alpha[5] = 0.9
    qc = QuantumCircuit(4)
    append_multiplexed_rotation(
        qc, "ry", alpha, target=3, controls=(0, 1, 2), prune_tol=1e-10
    )
    assert allclose_up_to_global_phase(
        qc.to_matrix(), multiplexed_rotation_matrix("ry", alpha)
    )


def test_pruning_reduces_gate_count(rng):
    # Pruning acts on the Walsh-transformed angles: a *constant* alpha
    # concentrates on theta_0 (everything else prunes away), while a
    # generic alpha needs the full Gray-code walk.
    generic_alpha = rng.uniform(0.5, 2.0, 8)
    constant_alpha = np.full(8, 1.3)

    def build(alpha):
        qc = QuantumCircuit(4)
        append_multiplexed_rotation(
            qc, "ry", alpha, target=3, controls=(0, 1, 2), prune_tol=1e-9
        )
        return len(qc)

    assert build(constant_alpha) == 1  # one unconditional rotation
    assert build(constant_alpha) < build(generic_alpha)


def test_all_zero_angles_collapse_to_nothing_or_identity():
    qc = QuantumCircuit(3)
    append_multiplexed_rotation(
        qc, "ry", np.zeros(4), target=2, controls=(0, 1), prune_tol=1e-9
    )
    # The emitted CX mask telescopes to nothing.
    assert allclose_up_to_global_phase(qc.to_matrix(), np.eye(8))


def test_angle_transform_roundtrip(rng):
    alpha = rng.uniform(-2, 2, 8)
    theta = multiplexed_angles(alpha)
    # alpha_j = sum_i (-1)^{<gray(i), j>} theta_i
    size = alpha.size
    rebuilt = np.zeros_like(alpha)
    for j in range(size):
        for i in range(size):
            sign = (-1) ** bin(gray_code(i) & j).count("1")
            rebuilt[j] += sign * theta[i]
    assert np.allclose(rebuilt, alpha)


def test_bad_angle_count_rejected():
    with pytest.raises(StatePreparationError):
        multiplexed_angles(np.ones(3))
    qc = QuantumCircuit(3)
    with pytest.raises(StatePreparationError):
        append_multiplexed_rotation(qc, "ry", np.ones(4), 2, (0,))


def test_bad_axis_rejected():
    qc = QuantumCircuit(2)
    with pytest.raises(StatePreparationError):
        append_multiplexed_rotation(qc, "rx", np.ones(2), 1, (0,))
