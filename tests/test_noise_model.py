"""Unit tests for the noise-model container."""

import pytest

from repro.errors import NoiseModelError
from repro.quantum import NoiseModel, depolarizing_channel, gate
from repro.quantum.instruction import Instruction


def _instr(name, qubits, *params):
    return Instruction(gate(name, *params), qubits)


def test_trivial_model():
    model = NoiseModel()
    assert model.is_trivial()
    assert model.rules_for(_instr("sx", (0,))) == []


def test_virtual_gates_cannot_carry_noise():
    model = NoiseModel()
    with pytest.raises(NoiseModelError):
        model.add_all_qubit_quantum_error(depolarizing_channel(0.1, 1), "rz")
    with pytest.raises(NoiseModelError):
        model.add_quantum_error(depolarizing_channel(0.1, 1), "rz", (0,))


def test_virtual_instruction_gets_no_rules():
    model = NoiseModel()
    model.add_all_qubit_quantum_error(depolarizing_channel(0.1, 1), "sx")
    assert model.rules_for(_instr("rz", (0,), 0.3)) == []


def test_default_rule_matches_any_qubits():
    model = NoiseModel()
    channel = depolarizing_channel(0.1, 1)
    model.add_all_qubit_quantum_error(channel, "sx")
    for q in (0, 3, 7):
        rules = model.rules_for(_instr("sx", (q,)))
        assert rules == [(channel, (q,))]


def test_default_1q_channel_expands_over_2q_gate():
    model = NoiseModel()
    channel = depolarizing_channel(0.1, 1)
    model.add_all_qubit_quantum_error(channel, "ecr")
    rules = model.rules_for(_instr("ecr", (2, 5)))
    assert rules == [(channel, (2,)), (channel, (5,))]


def test_local_rule_exact_qubits_only():
    model = NoiseModel()
    channel = depolarizing_channel(0.05, 2)
    model.add_quantum_error(channel, "ecr", (0, 1))
    assert model.rules_for(_instr("ecr", (0, 1))) == [(channel, (0, 1))]
    assert model.rules_for(_instr("ecr", (1, 0))) == []


def test_local_rule_with_sub_targets():
    model = NoiseModel()
    channel = depolarizing_channel(0.05, 1)
    model.add_quantum_error(channel, "ecr", (0, 1), targets=(1,))
    assert model.rules_for(_instr("ecr", (0, 1))) == [(channel, (1,))]


def test_targets_must_be_subset():
    model = NoiseModel()
    with pytest.raises(NoiseModelError):
        model.add_quantum_error(
            depolarizing_channel(0.05, 1), "ecr", (0, 1), targets=(2,)
        )


def test_targets_arity_must_match_channel():
    model = NoiseModel()
    with pytest.raises(NoiseModelError):
        model.add_quantum_error(
            depolarizing_channel(0.05, 2), "ecr", (0, 1), targets=(1,)
        )


def test_local_and_default_rules_combine():
    model = NoiseModel()
    local = depolarizing_channel(0.02, 2)
    default = depolarizing_channel(0.01, 1)
    model.add_quantum_error(local, "ecr", (0, 1))
    model.add_all_qubit_quantum_error(default, "ecr")
    rules = model.rules_for(_instr("ecr", (0, 1)))
    assert (local, (0, 1)) in rules
    assert (default, (0,)) in rules and (default, (1,)) in rules


def test_noisy_gate_names():
    model = NoiseModel()
    model.add_all_qubit_quantum_error(depolarizing_channel(0.1, 1), ["sx", "x"])
    model.add_quantum_error(depolarizing_channel(0.1, 2), "ecr", (0, 1))
    assert model.noisy_gate_names == {"sx", "x", "ecr"}
