"""Unit tests for the noise-scale sweep (cheap pieces only; the full
crossover is exercised by benchmarks/bench_extension_noise_sweep.py)."""

import pytest

from repro.evaluation import NoisePoint, render_noise_sweep
from repro.evaluation.noise_sweep import scaled_backend
from repro.hardware.calibration import BRISBANE_MEDIANS


def test_scaled_backend_scales_errors_down():
    nominal = scaled_backend(1.0)
    improved = scaled_backend(0.01)
    edge = nominal.coupling_map.edges[0]
    assert improved.gate_calibration("ecr", edge).error < (
        0.05 * nominal.gate_calibration("ecr", edge).error
    )
    assert improved.qubit(0).t1 > 50 * nominal.qubit(0).t1


def test_scaled_backend_error_capped():
    worst = scaled_backend(1000.0)
    edge = worst.coupling_map.edges[0]
    assert worst.gate_calibration("ecr", edge).error <= 0.5  # hard cap


def test_noise_point_winner():
    assert NoisePoint(1.0, 0.6, 0.01).enqode_wins
    assert not NoisePoint(0.001, 0.9, 0.99).enqode_wins


def test_render():
    table = render_noise_sweep(
        [NoisePoint(1.0, 0.6, 0.01), NoisePoint(0.001, 0.9, 0.99)]
    )
    assert "EnQode" in table and "Baseline" in table
    assert table.count("\n") == 3


def test_medians_untouched_globally():
    scaled_backend(0.5)
    assert BRISBANE_MEDIANS["ecr_error"] == pytest.approx(7.5e-3)
