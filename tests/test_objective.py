"""Unit tests for the symbolic fidelity objective and its gradient."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import EnQodeAnsatz, FidelityObjective, build_symbolic
from repro.errors import OptimizationError
from repro.quantum import random_real_amplitudes, simulate_statevector


@pytest.fixture(scope="module")
def setup():
    ansatz = EnQodeAnsatz(4, 3)
    symbolic = build_symbolic(ansatz)
    target = random_real_amplitudes(16, seed=0)
    return ansatz, symbolic, FidelityObjective(symbolic, ansatz, target)


def test_fidelity_in_unit_interval(setup, rng):
    _, _, objective = setup
    for _ in range(10):
        theta = rng.uniform(-np.pi, np.pi, 12)
        assert 0.0 <= objective.fidelity(theta) <= 1.0


def test_loss_is_one_minus_fidelity(setup, rng):
    _, _, objective = setup
    theta = rng.uniform(-np.pi, np.pi, 12)
    loss, _ = objective.value_and_grad(theta)
    assert loss == pytest.approx(1.0 - objective.fidelity(theta))


@given(st.integers(0, 2**32 - 1))
def test_analytic_gradient_matches_finite_differences(seed):
    ansatz = EnQodeAnsatz(3, 2)
    symbolic = build_symbolic(ansatz)
    objective = FidelityObjective(
        symbolic, ansatz, random_real_amplitudes(8, seed=1)
    )
    theta = np.random.default_rng(seed).uniform(-2, 2, 6)
    _, grad = objective.value_and_grad(theta)
    numeric = objective.numerical_grad(theta)
    assert np.allclose(grad, numeric, atol=1e-5)


def test_fidelity_against_circuit_simulation(setup, rng):
    ansatz, _, objective = setup
    theta = rng.uniform(-np.pi, np.pi, 12)
    psi = simulate_statevector(ansatz.circuit(theta)).data
    direct = abs(np.vdot(objective.target, psi)) ** 2
    assert objective.fidelity(theta) == pytest.approx(direct)


def test_embedded_state_is_ansatz_output(setup, rng):
    ansatz, _, objective = setup
    theta = rng.uniform(-np.pi, np.pi, 12)
    psi = simulate_statevector(ansatz.circuit(theta)).data
    assert np.allclose(objective.embedded_state(theta), psi)


def test_target_normalized_internally(setup):
    ansatz, symbolic, _ = setup
    target = 7.3 * random_real_amplitudes(16, seed=5)
    objective = FidelityObjective(symbolic, ansatz, target)
    assert np.linalg.norm(objective.target) == pytest.approx(1.0)


def test_zero_target_rejected(setup):
    ansatz, symbolic, _ = setup
    with pytest.raises(OptimizationError):
        FidelityObjective(symbolic, ansatz, np.zeros(16))


def test_wrong_dimension_rejected(setup):
    ansatz, symbolic, _ = setup
    with pytest.raises(OptimizationError):
        FidelityObjective(symbolic, ansatz, np.ones(8))


def test_overlap_magnitude_consistent(setup, rng):
    _, _, objective = setup
    theta = rng.uniform(-np.pi, np.pi, 12)
    assert abs(objective.overlap(theta)) ** 2 == pytest.approx(
        objective.fidelity(theta)
    )
