"""Tests for the batched offline training engine (stacked multi-restart).

Mirrors ``tests/test_batch.py`` for the offline stage: batched-vs-
sequential equivalence of ``EnQodeEncoder.fit`` (same clustering, same
RNG-stream restart draws, cluster fidelities to 1e-9), the multi-restart
driver's early-stop/active-masking semantics, the per-row L-BFGS drive,
per-cluster cost attribution into ``OfflineReport``, and the offline
zero-vector bugfix.
"""

import numpy as np
import pytest

from repro.core import (
    BatchFidelityObjective,
    BatchLBFGSOptimizer,
    EnQodeAnsatz,
    EnQodeConfig,
    EnQodeEncoder,
    FidelityObjective,
    LBFGSOptimizer,
    SymbolicState,
)
from repro.errors import OptimizationError


@pytest.fixture(scope="module")
def blob_data():
    """Ten tight clusters of smooth image-like unit vectors in R^16.

    Gaussian-bump profiles (paper-style smooth positive amplitudes)
    rather than raw Gaussian directions: smooth targets give the
    benign single-dominant-basin landscapes on which sequential and
    batched training provably coincide; raw random directions are
    multi-basin and any two optimizers may legitimately diverge there.
    """
    rng = np.random.default_rng(21)
    xs = np.arange(16)
    blocks = []
    for _ in range(10):
        center = rng.uniform(0, 16)
        width = rng.uniform(1.5, 4.0)
        offsets = (xs - center) % 16
        base = (
            np.exp(-(offsets**2) / (2 * width * width))
            + np.exp(-((offsets - 16) ** 2) / (2 * width * width))
            + 0.05
        )
        block = np.abs(base + 0.02 * rng.normal(size=(9, 16)))
        blocks.append(block / np.linalg.norm(block, axis=1, keepdims=True))
    return np.concatenate(blocks)


@pytest.fixture(scope="module")
def offline_config():
    return dict(
        num_qubits=4,
        num_layers=6,
        offline_restarts=4,
        offline_max_iterations=600,
        online_max_iterations=50,
        max_clusters=16,
        min_cluster_fidelity=0.98,
        seed=13,
    )


@pytest.fixture(scope="module")
def fitted_pair(segment4, blob_data, offline_config):
    batched = EnQodeEncoder(
        segment4, EnQodeConfig(**offline_config, offline_batch=True)
    )
    batched_report = batched.fit(blob_data)
    sequential = EnQodeEncoder(
        segment4, EnQodeConfig(**offline_config, offline_batch=False)
    )
    sequential_report = sequential.fit(blob_data)
    return batched, batched_report, sequential, sequential_report


# -- the acceptance regression: batched fit == sequential fit ------------------------


def test_batched_fit_matches_sequential(fitted_pair):
    """Same clustering, same restart draws, fidelities within 1e-9."""
    batched, b_report, sequential, s_report = fitted_pair
    assert b_report.num_clusters == s_report.num_clusters
    assert b_report.num_clusters >= 8
    np.testing.assert_array_equal(
        batched.kmeans.centers_, sequential.kmeans.centers_
    )
    for b_model, s_model in zip(
        batched.cluster_models, sequential.cluster_models
    ):
        np.testing.assert_allclose(b_model.center, s_model.center)
        assert abs(b_model.fidelity - s_model.fidelity) < 1e-9
        # Same RNG stream: both paths attempt the same restart count
        # from the same draws.  (Per-restart *trajectories* may differ —
        # the two optimizers can fall into different basins on a losing
        # restart — but the winning basin and the early-stop bookkeeping
        # must agree.)
        assert b_model.result.restarts_used == s_model.result.restarts_used
        assert len(b_model.result.history) == len(s_model.result.history)
        assert b_model.fidelity == pytest.approx(
            max(b_model.result.history), abs=1e-9
        )


def test_batched_encoders_encode_identically(fitted_pair, blob_data):
    """Downstream online encoding agrees between the two offline paths."""
    batched, _, sequential, _ = fitted_pair
    for sample in blob_data[:3]:
        b = batched.encode(sample)
        s = sequential.encode(sample)
        assert b.cluster_index == s.cluster_index
        assert abs(b.ideal_fidelity - s.ideal_fidelity) < 1e-9


def test_offline_report_populated_on_batched_path(fitted_pair):
    """Regression: total_time/cluster_times stay faithful when batched."""
    _, report, _, _ = fitted_pair
    assert report.total_time > 0.0
    assert report.clustering_time > 0.0
    assert report.training_time > 0.0
    assert report.total_time == pytest.approx(
        report.clustering_time + report.training_time
    )
    assert len(report.cluster_times) == report.num_clusters
    assert all(t > 0.0 for t in report.cluster_times)
    # Attributed per-cluster times sum back to the training wall time.
    assert sum(report.cluster_times) == pytest.approx(
        report.training_time, rel=0.5
    )
    assert len(report.cluster_fidelities) == report.num_clusters
    assert 0.0 < report.mean_cluster_fidelity <= 1.0


def test_fit_rejects_zero_sample_row(segment4, offline_config):
    """A zero row must raise cleanly instead of NaN-poisoning k-means."""
    encoder = EnQodeEncoder(segment4, EnQodeConfig(**offline_config))
    bad = np.ones((12, 16))
    bad[5] = 0.0
    with pytest.raises(OptimizationError):
        encoder.fit(bad)


# -- the multi-restart driver --------------------------------------------------------


@pytest.fixture(scope="module")
def restart_problem():
    # 8 layers at 4 qubits = 32 parameters for 16 amplitudes: the over-
    # parameterized regime where cold-start landscapes have a dominant
    # basin, so different optimizers provably meet at the same optima.
    ansatz = EnQodeAnsatz(4, 8)
    symbolic = SymbolicState.from_ansatz(ansatz)
    rng = np.random.default_rng(3)
    targets = rng.normal(size=(6, 16))
    targets /= np.linalg.norm(targets, axis=1, keepdims=True)
    return ansatz, symbolic, targets


def test_optimize_restarts_matches_sequential_driver(restart_problem):
    """Driver-level equivalence: same draws, same fidelities (1e-9)."""
    ansatz, symbolic, targets = restart_problem
    objective = BatchFidelityObjective(symbolic, ansatz, targets)
    batched = BatchLBFGSOptimizer(
        max_iterations=600, num_restarts=4, target_fidelity=0.995, seed=11
    ).optimize_restarts(objective)
    sequential = LBFGSOptimizer(
        max_iterations=600, num_restarts=4, target_fidelity=0.995, seed=11
    )
    for b in range(targets.shape[0]):
        single = sequential.optimize(
            FidelityObjective(symbolic, ansatz, targets[b])
        )
        assert abs(batched.fidelities[b] - single.fidelity) < 1e-9
        assert batched.restarts_used[b] == single.restarts_used
        assert len(batched.histories[b]) == len(single.history)


def test_optimize_restarts_early_stop_masking(restart_problem):
    """Clusters that hit the target stop consuming restarts."""
    ansatz, symbolic, targets = restart_problem
    objective = BatchFidelityObjective(symbolic, ansatz, targets)
    eager = BatchLBFGSOptimizer(
        max_iterations=600, num_restarts=5, target_fidelity=0.0, seed=1
    ).optimize_restarts(objective)
    assert np.all(eager.restarts_used == 1)
    assert all(len(h) == 1 for h in eager.histories)
    exhaustive = BatchLBFGSOptimizer(
        max_iterations=600, num_restarts=3, target_fidelity=1.1, seed=1
    ).optimize_restarts(objective)
    assert np.all(exhaustive.restarts_used == 3)
    assert all(len(h) == 3 for h in exhaustive.histories)
    # Best-of-restarts can only improve on the single-restart result.
    assert np.all(exhaustive.losses <= eager.losses + 1e-12)


def test_optimize_restarts_attribution_sums(restart_problem):
    """Per-cluster cost attributions sum back to the run totals."""
    ansatz, symbolic, targets = restart_problem
    objective = BatchFidelityObjective(symbolic, ansatz, targets)
    run = BatchLBFGSOptimizer(
        max_iterations=600, num_restarts=3, target_fidelity=1.1, seed=5
    ).optimize_restarts(objective)
    assert run.cluster_evaluations.sum() == pytest.approx(
        run.num_evaluations
    )
    assert run.cluster_times.sum() == pytest.approx(run.time, rel=0.2)
    assert run.cluster_iterations.sum() == run.num_iterations
    assert run.batch_size == targets.shape[0]


def test_restart_driver_validates_configuration():
    with pytest.raises(OptimizationError):
        BatchLBFGSOptimizer(num_restarts=0)


# -- the per-row drive ---------------------------------------------------------------


def test_optimize_rows_converges_per_row(restart_problem):
    ansatz, symbolic, targets = restart_problem
    objective = BatchFidelityObjective(symbolic, ansatz, targets)
    rng = np.random.default_rng(8)
    theta0 = rng.uniform(-np.pi, np.pi, (6, ansatz.num_parameters))
    result = BatchLBFGSOptimizer(max_iterations=600).optimize_rows(
        objective, theta0
    )
    start_losses, _ = objective.value_and_grad(theta0)
    assert np.all(result.losses <= start_losses + 1e-12)
    assert result.sample_iterations.shape == (6,)
    assert np.all(result.sample_iterations >= 1)
    # Converged rows sit at stationary points of their own objective.
    _, grads = objective.value_and_grad(result.thetas)
    grad_norms = np.abs(grads).max(axis=1)
    assert np.all(grad_norms[result.converged] < 1e-6)


def test_optimize_rows_matches_scipy_stacked_from_warm_start(
    restart_problem,
):
    """Started inside the same basin, both drives find the same optimum.

    (From a *cold* start on a hard multi-basin landscape the two drives
    may legitimately diverge to different local optima — equivalence is
    a basin property, which is why this check warm-starts.)
    """
    ansatz, symbolic, targets = restart_problem
    objective = BatchFidelityObjective(symbolic, ansatz, targets)
    optimizer = BatchLBFGSOptimizer(max_iterations=600)
    seed_theta = np.tile(
        LBFGSOptimizer.draw_restart_start(
            np.random.default_rng(11), ansatz.num_parameters
        ),
        (6, 1),
    )
    basin = optimizer.optimize(objective, seed_theta)
    rng = np.random.default_rng(2)
    warm = basin.thetas + 0.01 * rng.normal(size=basin.thetas.shape)
    rows = optimizer.optimize_rows(objective, warm)
    stacked = optimizer.optimize(objective, warm)
    np.testing.assert_allclose(
        rows.fidelities, stacked.fidelities, atol=1e-9
    )


def test_optimize_rows_validates_shape(restart_problem):
    ansatz, symbolic, targets = restart_problem
    objective = BatchFidelityObjective(symbolic, ansatz, targets)
    with pytest.raises(OptimizationError):
        BatchLBFGSOptimizer().optimize_rows(
            objective, np.zeros((2, ansatz.num_parameters))
        )


# -- the subset view ------------------------------------------------------------------


def test_subset_objective_matches_rows(restart_problem):
    ansatz, symbolic, targets = restart_problem
    objective = BatchFidelityObjective(symbolic, ansatz, targets)
    rng = np.random.default_rng(4)
    thetas = rng.uniform(-np.pi, np.pi, (6, ansatz.num_parameters))
    indices = np.array([4, 1, 1, 5])  # repeats: the wave-two tiling case
    sub = objective.subset(indices)
    assert sub.batch_size == 4
    losses, grads = objective.value_and_grad(thetas)
    sub_losses, sub_grads = sub.value_and_grad(thetas[indices])
    np.testing.assert_allclose(sub_losses, losses[indices], atol=1e-12)
    np.testing.assert_allclose(sub_grads, grads[indices], atol=1e-12)


# -- online accounting bugfix ---------------------------------------------------------


@pytest.mark.parametrize("engine", ["stacked", "rows"])
def test_embed_batch_attributes_evaluations_evenly(
    segment4, blob_data, offline_config, monkeypatch, engine
):
    """Per-sample num_evaluations sum to the batch total (not B times it)."""
    encoder = EnQodeEncoder(
        segment4, EnQodeConfig(online_batch_engine=engine, **offline_config)
    )
    encoder.fit(blob_data)
    captured = {}
    drive = "optimize" if engine == "stacked" else "optimize_rows"
    original = getattr(BatchLBFGSOptimizer, drive)

    def capturing(self, objective, theta0):
        result = original(self, objective, theta0)
        captured["total"] = result.num_evaluations
        return result

    monkeypatch.setattr(BatchLBFGSOptimizer, drive, capturing)
    outcomes = encoder._transfer.embed_batch(blob_data[:7])
    per_sample = [o.result.num_evaluations for o in outcomes]
    assert sum(per_sample) == captured["total"]
    assert max(per_sample) - min(per_sample) <= 1
