"""Unit tests for the L-BFGS optimization driver."""

import numpy as np
import pytest

from repro.core import (
    EnQodeAnsatz,
    FidelityObjective,
    LBFGSOptimizer,
    build_symbolic,
)
from repro.errors import OptimizationError


@pytest.fixture(scope="module")
def problem():
    ansatz = EnQodeAnsatz(4, 4)
    symbolic = build_symbolic(ansatz)
    target = np.zeros(16)
    target[0] = 1.0  # reachable target (see test_symbolic)
    return ansatz, FidelityObjective(symbolic, ansatz, target)


def test_converges_on_reachable_target(problem):
    _, objective = problem
    result = LBFGSOptimizer(num_restarts=8, seed=0).optimize(objective)
    assert result.fidelity > 0.99
    assert result.loss == pytest.approx(1.0 - result.fidelity)


def test_result_bookkeeping(problem):
    _, objective = problem
    result = LBFGSOptimizer(num_restarts=2, seed=1).optimize(objective)
    assert result.num_iterations > 0
    assert result.num_evaluations >= result.num_iterations
    assert result.time > 0.0
    assert 1 <= result.restarts_used <= 2
    assert len(result.history) == result.restarts_used


def test_warm_start_uses_theta0(problem):
    _, objective = problem
    reference = LBFGSOptimizer(num_restarts=8, seed=0).optimize(objective)
    warm = LBFGSOptimizer().optimize(objective, theta0=reference.theta)
    assert warm.restarts_used == 1
    assert warm.fidelity >= reference.fidelity - 1e-9
    # Warm start from the optimum should take almost no iterations.
    assert warm.num_iterations <= 5


def test_early_exit_on_target_fidelity(problem):
    _, objective = problem
    optimizer = LBFGSOptimizer(
        num_restarts=10, seed=0, target_fidelity=0.5
    )
    result = optimizer.optimize(objective)
    assert result.restarts_used < 10


def test_max_iterations_bounds_work(problem):
    _, objective = problem
    short = LBFGSOptimizer(max_iterations=3, num_restarts=1, seed=2)
    result = short.optimize(objective)
    assert result.num_iterations <= 3


def test_seeded_restarts_reproducible(problem):
    _, objective = problem
    a = LBFGSOptimizer(num_restarts=2, seed=42).optimize(objective)
    b = LBFGSOptimizer(num_restarts=2, seed=42).optimize(objective)
    assert np.allclose(a.theta, b.theta)


def test_invalid_configuration_rejected():
    with pytest.raises(OptimizationError):
        LBFGSOptimizer(max_iterations=0)
    with pytest.raises(OptimizationError):
        LBFGSOptimizer(num_restarts=0)
