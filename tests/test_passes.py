"""Unit tests for circuit-rewrite passes."""

import numpy as np
import pytest

from repro.quantum import QuantumCircuit, simulate_statevector
from repro.transpile import (
    cancel_adjacent_cx,
    merge_1q_runs,
    resynthesize_1q,
    translate_1q,
)
from tests.conftest import random_circuit


def _states_match(a, b):
    va = simulate_statevector(a).data
    vb = simulate_statevector(b).data
    return abs(np.vdot(va, vb)) ** 2 == pytest.approx(1.0)


def test_merge_collapses_runs():
    qc = QuantumCircuit(2)
    qc.h(0).s(0).t(0).sx(0).cx(0, 1).h(1)
    merged = merge_1q_runs(qc)
    names = [i.name for i in merged]
    assert names == ["u1q", "cx", "u1q"]
    assert _states_match(qc, merged)


def test_merge_drops_identity_runs():
    qc = QuantumCircuit(1).s(0).sdg(0)
    assert len(merge_1q_runs(qc)) == 0


def test_merge_preserves_random_circuits():
    for seed in range(4):
        qc = random_circuit(4, 30, seed=seed)
        assert _states_match(qc, merge_1q_runs(qc))


def test_resynthesize_emits_native_only():
    qc = random_circuit(3, 20, seed=5)
    native = resynthesize_1q(merge_1q_runs(qc))
    for instr in native:
        if instr.gate.num_qubits == 1:
            assert instr.name in {"rz", "sx", "x"}
    assert _states_match(qc, native)


def test_translate_1q_keeps_native_untouched():
    qc = QuantumCircuit(1).sx(0).rz(0.4, 0).h(0)
    lowered = translate_1q(qc, frozenset({"sx", "x", "rz"}))
    names = [i.name for i in lowered]
    assert names[0] == "sx" and names[1] == "rz"
    assert "h" not in names
    assert _states_match(qc, lowered)


def test_cancel_adjacent_cx_removes_pairs():
    qc = QuantumCircuit(2).cx(0, 1).cx(0, 1)
    assert len(cancel_adjacent_cx(qc)) == 0


def test_cancel_handles_triple():
    qc = QuantumCircuit(2).cx(0, 1).cx(0, 1).cx(0, 1)
    assert len(cancel_adjacent_cx(qc)) == 1


def test_cancel_blocked_by_interposed_gate():
    qc = QuantumCircuit(2).cx(0, 1).rz(0.3, 1).cx(0, 1)
    assert len(cancel_adjacent_cx(qc)) == 3


def test_cancel_not_fooled_by_reversed_direction():
    qc = QuantumCircuit(2).cx(0, 1).cx(1, 0)
    assert len(cancel_adjacent_cx(qc)) == 2


def test_cancel_works_across_other_qubits():
    qc = QuantumCircuit(3).cx(0, 1).h(2).cx(0, 1)
    cancelled = cancel_adjacent_cx(qc)
    assert [i.name for i in cancelled] == ["h"]


def test_cancel_chains_of_pairs():
    # After cancelling the inner pair, the outer pair becomes adjacent.
    qc = QuantumCircuit(2).cy(0, 1).cx(0, 1).cx(0, 1).cy(0, 1)
    assert len(cancel_adjacent_cx(qc)) == 0


def test_cancel_preserves_semantics():
    for seed in range(3):
        qc = random_circuit(4, 25, seed=seed + 40)
        assert _states_match(qc, cancel_adjacent_cx(qc))
