"""Unit tests for the from-scratch PCA."""

import numpy as np
import pytest

from repro.data import PCA
from repro.errors import DataError


def _low_rank_data(rng, n=200, d=50, rank=5):
    basis = rng.normal(size=(rank, d))
    weights = rng.normal(size=(n, rank)) * np.linspace(5, 1, rank)
    return weights @ basis + 0.01 * rng.normal(size=(n, d))


def test_components_orthonormal(rng):
    pca = PCA(8).fit(_low_rank_data(rng))
    gram = pca.components_ @ pca.components_.T
    assert np.allclose(gram, np.eye(8), atol=1e-8)


def test_variance_sorted_descending(rng):
    pca = PCA(10).fit(_low_rank_data(rng))
    variances = pca.explained_variance_
    assert np.all(np.diff(variances) <= 1e-9)


def test_low_rank_data_explained(rng):
    pca = PCA(5).fit(_low_rank_data(rng, rank=5))
    assert pca.explained_variance_ratio_.sum() > 0.99


def test_transform_inverse_roundtrip(rng):
    data = _low_rank_data(rng, rank=4)
    pca = PCA(4).fit(data)
    rebuilt = pca.inverse_transform(pca.transform(data))
    assert np.allclose(rebuilt, data, atol=0.2)


def test_transform_centers_data(rng):
    data = _low_rank_data(rng) + 100.0
    features = PCA(3).fit(data).transform(data)
    assert np.allclose(features.mean(axis=0), 0.0, atol=1e-8)


def test_deterministic_sign_convention(rng):
    data = _low_rank_data(rng)
    a = PCA(4).fit(data).components_
    b = PCA(4).fit(data).components_
    assert np.allclose(a, b)


def test_too_many_components_rejected(rng):
    with pytest.raises(DataError):
        PCA(60).fit(rng.normal(size=(10, 50)))


def test_transform_before_fit_rejected():
    with pytest.raises(DataError):
        PCA(2).transform(np.ones((3, 4)))


def test_bad_inputs_rejected():
    with pytest.raises(DataError):
        PCA(0)
    with pytest.raises(DataError):
        PCA(2).fit(np.ones(10))


def test_fit_transform_equals_fit_then_transform(rng):
    data = _low_rank_data(rng)
    a = PCA(3).fit_transform(data)
    b = PCA(3).fit(data).transform(data)
    assert np.allclose(a, b)
