"""Tests for the process-pool serving backend (``backend="process"``).

The PR-10 acceptance criteria: a fleet of worker processes holding
float-exact encoder replicas serves micro-batched traffic with
responses float-bit identical to a synchronous ``encode_batch`` replay
of the same per-key flush partition (decoded from the kind-4 wire
record by template rebind); registry keys shard deterministically over
the fleet; bundles registered after start reach every live worker; an
injected worker death escalates to a real SIGKILL whose respawn loses
zero tickets; and the whole resilience layer (retries, deadlines,
admission) keeps working across the process boundary.

Spawned fleets are slow to start (each worker is a fresh interpreter
importing numpy/scipy), so the suite keeps encoders small (4 qubits),
fleets small (2 workers), and service starts few — and carries the
``process_backend`` marker so CI can run it as a dedicated job with an
extended watchdog.
"""

import time

import numpy as np
import pytest

from repro.core import EnQodeConfig, EnQodeEncoder, ServiceConfig
from repro.errors import ServiceError
from repro.io import dump_encoded_batch, load_encoded_batch
from repro.service import (
    EncodingService,
    FaultInjector,
    FaultRule,
    ProcessBackend,
)
from repro.service.process_backend import _stable_hash

pytestmark = [pytest.mark.process_backend, pytest.mark.timeout(300)]


@pytest.fixture(scope="module")
def cluster_data():
    rng = np.random.default_rng(55)
    centers = rng.normal(size=(2, 16))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    blocks = []
    for center in centers:
        block = center + 0.04 * rng.normal(size=(30, 16))
        blocks.append(block / np.linalg.norm(block, axis=1, keepdims=True))
    return np.concatenate(blocks)


def _fit(segment4, data, seed):
    config = EnQodeConfig(
        num_qubits=4,
        num_layers=4,
        offline_restarts=2,
        offline_max_iterations=200,
        online_max_iterations=40,
        max_clusters=3,
        seed=seed,
    )
    encoder = EnQodeEncoder(segment4, config)
    encoder.fit(data)
    return encoder


@pytest.fixture(scope="module")
def fitted_pair(segment4, cluster_data):
    half = len(cluster_data) // 2
    return (
        _fit(segment4, cluster_data[:half], seed=3),
        _fit(segment4, cluster_data[half:], seed=5),
    )


def _assert_bit_identical_replay(service, tickets):
    """Group done tickets by (key, flush_id) and replay each partition
    through a synchronous ``encode_batch``: every field must be
    float-bit equal — the wire crossing must be invisible."""
    groups: dict = {}
    for ticket in tickets:
        response = ticket.response
        groups.setdefault((response.key, response.flush_id), []).append(
            (response, ticket.request.sample)
        )
    assert groups
    for (key, _fid), group in groups.items():
        encoder = service.registry.get(key)
        samples = np.stack([sample for _, sample in group])
        for (response, _), reference in zip(
            group, encoder.encode_batch(samples)
        ):
            assert response.cluster_index == reference.cluster_index
            assert np.array_equal(response.encoded.theta, reference.theta)
            assert (
                response.encoded.ideal_fidelity
                == reference.ideal_fidelity
            )
            assert list(response.circuit) == list(reference.circuit)


# -- config + sharding (no fleet spawned) ----------------------------------------------


def test_process_backend_requires_template_path():
    with pytest.raises(ServiceError, match="use_template"):
        ServiceConfig(backend="process", use_template=False)


def test_process_config_knobs_validate():
    config = ServiceConfig(
        backend="process",
        workers=3,
        shard_strategy="modulo",
        spawn_timeout=10.0,
        handshake_timeout=5.0,
    )
    assert config.shard_strategy == "modulo"
    with pytest.raises(ServiceError, match="shard_strategy"):
        ServiceConfig(shard_strategy="random")
    with pytest.raises(ServiceError, match="spawn_timeout"):
        ServiceConfig(spawn_timeout=0.0)
    with pytest.raises(ServiceError, match="handshake_timeout"):
        ServiceConfig(handshake_timeout=-1.0)


def test_stable_hash_is_process_independent():
    """Sharding must not depend on per-process hash salting: the hash
    of a key is a pure function of its text."""
    assert _stable_hash("model-a") == _stable_hash("model-a")
    assert _stable_hash("model-a") != _stable_hash("model-b")
    # Known-answer: pin the value so an accidental switch to salted
    # hash() (or a digest change) fails loudly rather than silently
    # resharding every deployment.
    assert _stable_hash("") == int.from_bytes(
        bytes.fromhex("d41d8cd98f00b204"), "little"
    )


@pytest.mark.parametrize("strategy", ["rendezvous", "modulo"])
def test_sharding_is_deterministic_and_rebalances(strategy, fitted_pair):
    """Routing is a pure function of (key, alive fleet): stable while
    the fleet is whole, rerouted onto survivors when a slot dies, and
    restored when it comes back."""
    service = EncodingService(
        backend="process", workers=4, shard_strategy=strategy
    )
    backend = service._backend_impl
    assert isinstance(backend, ProcessBackend)
    # No processes are spawned here: mark slots alive by hand and
    # exercise the pure routing logic.
    for slot in backend._slots:
        slot.alive = True
    keys = [f"model-{i}" for i in range(16)]
    first = {key: backend.shard_of(key).index for key in keys}
    assert first == {key: backend.shard_of(key).index for key in keys}
    assert set(first.values()) <= {0, 1, 2, 3}
    assert len(set(first.values())) > 1  # 16 keys spread over 4 workers
    dead = backend._slots[1]
    dead.alive = False
    rerouted = {key: backend.shard_of(key).index for key in keys}
    for key in keys:
        if first[key] != 1:
            if strategy == "rendezvous":
                # Minimal-disruption property: only the dead worker's
                # keys move.
                assert rerouted[key] == first[key]
        else:
            assert rerouted[key] != 1
    dead.alive = True
    assert {key: backend.shard_of(key).index for key in keys} == first


def test_shard_of_none_when_fleet_down():
    service = EncodingService(backend="process", workers=2)
    assert service._backend_impl.shard_of("k") is None


# -- kind-4 wire record (no fleet spawned) ---------------------------------------------


def test_encoded_batch_wire_roundtrip(fitted_pair, cluster_data):
    """The response payload format: dump on one side, rebind on the
    other, and every per-sample field plus the run report survives
    bit-exactly."""
    encoder = fitted_pair[0]
    samples = cluster_data[:5]
    encoded, report = encoder.pipeline.run_reported(
        samples, use_template=True
    )
    blob = dump_encoded_batch(encoded, report)
    template = encoder.pipeline.lower.template()
    targets = encoder.pipeline.prepare(samples)
    decoded, decoded_report = load_encoded_batch(
        blob, template=template, targets=targets
    )
    assert len(decoded) == len(encoded)
    for ours, theirs in zip(decoded, encoded):
        assert np.array_equal(ours.theta, theirs.theta)
        assert ours.cluster_index == theirs.cluster_index
        assert ours.ideal_fidelity == theirs.ideal_fidelity
        assert ours.compile_time == theirs.compile_time
        assert ours.optimizer_iterations == theirs.optimizer_iterations
        assert ours.optimizer_evaluations == theirs.optimizer_evaluations
        assert np.array_equal(ours.target, theirs.target)
        assert list(ours.transpiled.circuit) == list(
            theirs.transpiled.circuit
        )
    assert decoded_report.batch_size == report.batch_size
    assert decoded_report.route_seconds == report.route_seconds
    assert decoded_report.finetune_seconds == report.finetune_seconds
    assert decoded_report.bind_seconds == report.bind_seconds
    assert decoded_report.lower_seconds == report.lower_seconds
    assert decoded_report.template_binds == report.template_binds
    assert decoded_report.template_hit == report.template_hit


# -- live fleet ------------------------------------------------------------------------


def test_process_service_end_to_end(fitted_pair, cluster_data):
    """One fleet, the full story: spawn, shard, serve two keys
    bit-identically, register a key after start, restart the service,
    and stop clean."""
    first, second = fitted_pair
    with EncodingService(
        backend="process", workers=2, max_batch=4, max_delay=0.01
    ) as service:
        service.register("low", first)
        shard_map = service.shard_map()
        assert set(shard_map) == {"low"}
        assert all(0 <= idx < 2 for idx in shard_map.values())

        tickets = [
            service.submit(x, key="low") for x in cluster_data[:8]
        ]
        # Register a second bundle while the fleet is live: it must
        # reach every worker, wherever the key routes.
        service.register("high", second)
        assert set(service.shard_map()) == {"low", "high"}
        tickets += [
            service.submit(x, key="high") for x in cluster_data[30:36]
        ]
        service.drain(timeout=120.0)
        assert all(t.done for t in tickets)
        _assert_bit_identical_replay(service, tickets)

        stats = service.stats()
        assert stats.requests_completed == len(tickets)
        assert stats.requests_failed == 0

    # Restart after stop: a fresh fleet comes up with all bundles.
    service.start()
    try:
        ticket = service.submit(cluster_data[10], key="high")
        response = ticket.result(timeout=120.0)
        reference = second.encode_batch(cluster_data[10:11])[0]
        assert np.array_equal(response.encoded.theta, reference.theta)
        assert list(response.circuit) == list(reference.circuit)
    finally:
        service.stop()


def test_injected_death_sigkills_and_respawns(fitted_pair, cluster_data):
    """``kind="death"`` under the process backend is a real SIGKILL:
    the routed worker process dies, the batch requeues in order, a
    replacement process comes up, and no ticket is lost."""
    injector = FaultInjector(
        [FaultRule("worker", kind="death", times=1, probability=1.0)]
    )
    with EncodingService(
        backend="process",
        workers=2,
        max_batch=4,
        max_delay=0.005,
        fault_injector=injector,
    ) as service:
        service.register("k", fitted_pair[0])
        tickets = [service.submit(x, key="k") for x in cluster_data[:8]]
        service.drain(timeout=180.0)
        backend = service._backend_impl
        assert injector.fired_count("worker") == 1
        assert backend._respawns == 1  # replacement worker thread
        # The replacement *process* spawns asynchronously (a fresh
        # interpreter importing numpy) while survivors absorb the
        # rerouted traffic; wait for it to land.
        deadline = time.monotonic() + 120.0
        while (
            backend.process_respawns < 1 and time.monotonic() < deadline
        ):
            time.sleep(0.1)
        assert backend.process_respawns >= 1  # replacement process
        assert backend._respawn_failures == 0
        assert all(t.done for t in tickets)  # deaths never fail work
        _assert_bit_identical_replay(service, tickets)
        stats = service.stats()
    assert stats.requests_completed == len(tickets)
    assert stats.requests_pending == 0


def test_parent_side_retry_wraps_the_process_boundary(
    fitted_pair, cluster_data
):
    """The resilience layer is parent-side and unchanged: a transient
    injected flush fault is retried to success even though the flush
    body executes in a worker process."""
    injector = FaultInjector(
        [FaultRule("flush", kind="error", times=1, transient=True)]
    )
    with EncodingService(
        backend="process",
        workers=2,
        max_batch=4,
        max_delay=0.005,
        retry_attempts=3,
        retry_backoff=0.0,
        fault_injector=injector,
    ) as service:
        service.register("k", fitted_pair[0])
        tickets = [service.submit(x, key="k") for x in cluster_data[:4]]
        service.drain(timeout=120.0)
        assert injector.fired_count("flush") == 1
        assert all(t.done for t in tickets)
        _assert_bit_identical_replay(service, tickets)
        assert service.stats().retries == 1
