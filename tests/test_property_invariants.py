"""Property-based tests (hypothesis) for core physical invariants."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.baseline import mottonen_circuit
from repro.core import EnQodeAnsatz, FidelityObjective, build_symbolic
from repro.quantum import (
    DensityMatrix,
    QuantumCircuit,
    amplitude_damping_channel,
    depolarizing_channel,
    phase_damping_channel,
    simulate_statevector,
    state_fidelity,
)

finite_angle = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_angle, min_size=3, max_size=3), st.integers(0, 2))
def test_rotations_preserve_norm(angles, qubit):
    qc = QuantumCircuit(3)
    qc.rx(angles[0], qubit).ry(angles[1], (qubit + 1) % 3).rz(angles[2], qubit)
    qc.cy(qubit, (qubit + 1) % 3)
    psi = simulate_statevector(qc)
    assert abs(np.linalg.norm(psi.data) - 1.0) < 1e-10


@given(
    st.floats(0.0, 1.0),
    st.sampled_from(
        [depolarizing_channel, amplitude_damping_channel, phase_damping_channel]
    ),
    st.integers(0, 2**31 - 1),
)
def test_channels_preserve_trace_and_positivity(p, factory, seed):
    channel = factory(p)
    rng = np.random.default_rng(seed)
    mat = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    rho = DensityMatrix(
        (mat @ mat.conj().T) / np.trace(mat @ mat.conj().T).real,
        validate=False,
    )
    rho.apply_channel(channel, (0,))
    assert abs(rho.trace() - 1.0) < 1e-9
    eigenvalues = np.linalg.eigvalsh(rho.data)
    assert eigenvalues.min() > -1e-9


@given(st.integers(0, 2**31 - 1))
def test_channels_never_increase_purity_under_depolarizing(seed):
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=4) + 1j * rng.normal(size=4)
    vec /= np.linalg.norm(vec)
    rho = DensityMatrix.from_statevector(vec)
    before = rho.purity()
    rho.apply_channel(depolarizing_channel(0.3, 1), (1,))
    assert rho.purity() <= before + 1e-10


@given(st.integers(0, 2**31 - 1), st.integers(2, 5))
def test_mottonen_exact_for_random_real_vectors(seed, num_qubits):
    rng = np.random.default_rng(seed)
    target = rng.normal(size=2**num_qubits)
    target /= np.linalg.norm(target)
    psi = simulate_statevector(mottonen_circuit(target))
    assert abs(np.vdot(psi.data, target)) ** 2 > 1.0 - 1e-9


@given(st.integers(0, 2**31 - 1))
def test_symbolic_state_flat_and_normalized(seed):
    ansatz = EnQodeAnsatz(4, 3)
    symbolic = build_symbolic(ansatz)
    theta = np.random.default_rng(seed).uniform(-np.pi, np.pi, 12)
    amplitudes = symbolic.amplitudes(theta)
    assert np.allclose(np.abs(amplitudes), 0.25)
    assert abs(np.linalg.norm(amplitudes) - 1.0) < 1e-10


@given(st.integers(0, 2**31 - 1))
def test_objective_gradient_property(seed):
    rng = np.random.default_rng(seed)
    ansatz = EnQodeAnsatz(3, 2)
    symbolic = build_symbolic(ansatz)
    target = rng.normal(size=8)
    target /= np.linalg.norm(target)
    objective = FidelityObjective(symbolic, ansatz, target)
    theta = rng.uniform(-np.pi, np.pi, 6)
    loss, grad = objective.value_and_grad(theta)
    assert 0.0 <= loss <= 1.0
    assert np.allclose(grad, objective.numerical_grad(theta), atol=1e-5)


@given(st.integers(0, 2**31 - 1))
def test_fidelity_bounds_property(seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=8) + 1j * rng.normal(size=8)
    a /= np.linalg.norm(a)
    mat = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
    sigma = mat @ mat.conj().T
    sigma /= np.trace(sigma).real
    f = state_fidelity(a, sigma)
    assert 0.0 <= f <= 1.0
