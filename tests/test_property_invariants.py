"""Property-based tests (hypothesis) for core physical invariants,
plus seeded randomized sweeps of the online pipeline-stage equivalences
(``encode`` == ``encode_batch[i]`` == service submit/flush) across
qubit counts, batch sizes, optimization levels, and degenerate inputs
(duplicate rows, near-zero-norm rows, batch size 1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baseline import mottonen_circuit
from repro.core import (
    EnQodeAnsatz,
    EnQodeConfig,
    EnQodeEncoder,
    FidelityObjective,
    build_symbolic,
)
from repro.errors import OptimizationError
from repro.hardware import brisbane_linear_segment
from repro.service import EncodingService
from repro.quantum import (
    DensityMatrix,
    QuantumCircuit,
    amplitude_damping_channel,
    depolarizing_channel,
    phase_damping_channel,
    simulate_statevector,
    state_fidelity,
)

finite_angle = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_angle, min_size=3, max_size=3), st.integers(0, 2))
def test_rotations_preserve_norm(angles, qubit):
    qc = QuantumCircuit(3)
    qc.rx(angles[0], qubit).ry(angles[1], (qubit + 1) % 3).rz(angles[2], qubit)
    qc.cy(qubit, (qubit + 1) % 3)
    psi = simulate_statevector(qc)
    assert abs(np.linalg.norm(psi.data) - 1.0) < 1e-10


@given(
    st.floats(0.0, 1.0),
    st.sampled_from(
        [depolarizing_channel, amplitude_damping_channel, phase_damping_channel]
    ),
    st.integers(0, 2**31 - 1),
)
def test_channels_preserve_trace_and_positivity(p, factory, seed):
    channel = factory(p)
    rng = np.random.default_rng(seed)
    mat = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    rho = DensityMatrix(
        (mat @ mat.conj().T) / np.trace(mat @ mat.conj().T).real,
        validate=False,
    )
    rho.apply_channel(channel, (0,))
    assert abs(rho.trace() - 1.0) < 1e-9
    eigenvalues = np.linalg.eigvalsh(rho.data)
    assert eigenvalues.min() > -1e-9


@given(st.integers(0, 2**31 - 1))
def test_channels_never_increase_purity_under_depolarizing(seed):
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=4) + 1j * rng.normal(size=4)
    vec /= np.linalg.norm(vec)
    rho = DensityMatrix.from_statevector(vec)
    before = rho.purity()
    rho.apply_channel(depolarizing_channel(0.3, 1), (1,))
    assert rho.purity() <= before + 1e-10


@given(st.integers(0, 2**31 - 1), st.integers(2, 5))
def test_mottonen_exact_for_random_real_vectors(seed, num_qubits):
    rng = np.random.default_rng(seed)
    target = rng.normal(size=2**num_qubits)
    target /= np.linalg.norm(target)
    psi = simulate_statevector(mottonen_circuit(target))
    assert abs(np.vdot(psi.data, target)) ** 2 > 1.0 - 1e-9


@given(st.integers(0, 2**31 - 1))
def test_symbolic_state_flat_and_normalized(seed):
    ansatz = EnQodeAnsatz(4, 3)
    symbolic = build_symbolic(ansatz)
    theta = np.random.default_rng(seed).uniform(-np.pi, np.pi, 12)
    amplitudes = symbolic.amplitudes(theta)
    assert np.allclose(np.abs(amplitudes), 0.25)
    assert abs(np.linalg.norm(amplitudes) - 1.0) < 1e-10


@given(st.integers(0, 2**31 - 1))
def test_objective_gradient_property(seed):
    rng = np.random.default_rng(seed)
    ansatz = EnQodeAnsatz(3, 2)
    symbolic = build_symbolic(ansatz)
    target = rng.normal(size=8)
    target /= np.linalg.norm(target)
    objective = FidelityObjective(symbolic, ansatz, target)
    theta = rng.uniform(-np.pi, np.pi, 6)
    loss, grad = objective.value_and_grad(theta)
    assert 0.0 <= loss <= 1.0
    assert np.allclose(grad, objective.numerical_grad(theta), atol=1e-5)


@given(st.integers(0, 2**31 - 1))
def test_fidelity_bounds_property(seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=8) + 1j * rng.normal(size=8)
    a /= np.linalg.norm(a)
    mat = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
    sigma = mat @ mat.conj().T
    sigma /= np.trace(sigma).real
    f = state_fidelity(a, sigma)
    assert 0.0 <= f <= 1.0


# -- online pipeline-stage equivalence sweeps ------------------------------------------
#
# One fitted encoder per (num_qubits, optimization_level) variant,
# trained once per module; hypothesis then sweeps seeds, batch sizes,
# and variants over them.  The invariants mirror the serving-layer
# guarantees: a sync-service submit-then-flush is *instruction-
# identical* to encode_batch on the same rows, template and full
# lowering agree gate for gate, and the one-row path degrades to the
# historical `encode` numerics.

_VARIANTS = [(3, 1), (4, 1), (4, 0)]


@pytest.fixture(scope="module")
def online_encoders():
    built = {}
    for num_qubits, level in _VARIANTS:
        dim = 2**num_qubits
        rng = np.random.default_rng(60 + 7 * num_qubits + level)
        centers = rng.normal(size=(2, dim))
        centers /= np.linalg.norm(centers, axis=1, keepdims=True)
        blocks = [
            center + 0.05 * rng.normal(size=(20, dim)) for center in centers
        ]
        data = np.concatenate(
            [b / np.linalg.norm(b, axis=1, keepdims=True) for b in blocks]
        )
        config = EnQodeConfig(
            num_qubits=num_qubits,
            num_layers=4,
            offline_restarts=2,
            offline_max_iterations=300,
            online_max_iterations=50,
            max_clusters=4,
            optimization_level=level,
            seed=11,
        )
        encoder = EnQodeEncoder(brisbane_linear_segment(num_qubits), config)
        encoder.fit(data)
        built[(num_qubits, level)] = (encoder, data)
    return built


def _draw_rows(data, rng, batch_size):
    return data[rng.integers(len(data), size=batch_size)]


@given(
    st.integers(0, 2**31 - 1),
    st.sampled_from(_VARIANTS),
    st.integers(2, 6),
)
def test_encode_batch_rows_match_per_sample_encode(
    online_encoders, seed, variant, batch_size
):
    """encode_batch[i] == encode(row_i): same routing, fidelity to 1e-9.

    The batched fine-tune engine and the sequential scipy engine share
    warm starts and tolerances, so they agree to optimizer precision
    (exact bit-identity is only promised within one engine).
    """
    encoder, data = online_encoders[variant]
    rows = _draw_rows(data, np.random.default_rng(seed), batch_size)
    batched = encoder.encode_batch(rows)
    for row, sample in zip(rows, batched):
        one = encoder.encode(row)
        assert sample.cluster_index == one.cluster_index
        assert abs(sample.ideal_fidelity - one.ideal_fidelity) < 1e-9


@given(
    st.integers(0, 2**31 - 1),
    st.sampled_from(_VARIANTS),
    st.integers(1, 6),
)
def test_service_flush_instruction_identical_to_encode_batch(
    online_encoders, seed, variant, batch_size
):
    """Sync-service submit-then-flush == encode_batch, float bits included."""
    encoder, data = online_encoders[variant]
    rows = _draw_rows(data, np.random.default_rng(seed), batch_size)
    reference = encoder.encode_batch(rows)
    service = EncodingService(max_batch=batch_size)
    service.register("k", encoder)
    tickets = [service.submit(row, key="k") for row in rows]
    for ticket, ref in zip(tickets, reference):
        response = ticket.result()
        assert response.cluster_index == ref.cluster_index
        assert np.array_equal(response.encoded.theta, ref.theta)
        assert response.encoded.ideal_fidelity == ref.ideal_fidelity
        assert list(response.circuit) == list(ref.circuit)


@pytest.mark.timeout(300)
@pytest.mark.parametrize(
    "backend",
    [
        "sync",
        "thread",
        pytest.param("process", marks=pytest.mark.process_backend),
    ],
)
@pytest.mark.parametrize("seed", [7, 1234])
def test_every_backend_agrees_with_encode_batch(
    online_encoders, backend, seed
):
    """Seeded sweep of the cross-backend equivalence: sync, thread, and
    process serving all produce responses float-bit identical to an
    ``encode_batch`` replay of the same per-key flush partition.  Plain
    parametrize, not hypothesis: the process fleet pays a real spawn
    per example."""
    encoder, data = online_encoders[(4, 1)]
    rows = _draw_rows(data, np.random.default_rng(seed), 6)
    service = EncodingService(max_batch=4, backend=backend, workers=2)
    service.register("k", encoder)
    if backend != "sync":
        service.start()
    try:
        tickets = [service.submit(row, key="k") for row in rows]
        responses = [t.result(timeout=120.0) for t in tickets]
    finally:
        if backend != "sync":
            service.stop()
    groups: dict = {}
    for ticket, response in zip(tickets, responses):
        groups.setdefault(response.flush_id, []).append(
            (response, ticket.request.sample)
        )
    for _fid, group in groups.items():
        reference = encoder.encode_batch(
            np.stack([sample for _, sample in group])
        )
        for (response, _), ref in zip(group, reference):
            assert response.cluster_index == ref.cluster_index
            assert np.array_equal(response.encoded.theta, ref.theta)
            assert response.encoded.ideal_fidelity == ref.ideal_fidelity
            assert list(response.circuit) == list(ref.circuit)


@given(st.integers(0, 2**31 - 1), st.sampled_from(_VARIANTS))
def test_duplicate_rows_encode_identically(online_encoders, seed, variant):
    """Degenerate batch: duplicated rows get bit-identical embeddings."""
    encoder, data = online_encoders[variant]
    rng = np.random.default_rng(seed)
    row = data[int(rng.integers(len(data)))]
    rows = np.stack([row, data[int(rng.integers(len(data)))], row])
    first, other, duplicate = encoder.encode_batch(rows)
    assert first.cluster_index == duplicate.cluster_index
    assert np.array_equal(first.theta, duplicate.theta)
    assert first.ideal_fidelity == duplicate.ideal_fidelity
    assert list(first.circuit) == list(duplicate.circuit)


@given(
    st.integers(0, 2**31 - 1),
    st.sampled_from(_VARIANTS),
    st.integers(3, 8),
)
def test_near_zero_norm_rows_are_normalized(
    online_encoders, seed, variant, exponent
):
    """Rows scaled down to ~1e-8 route and embed like their unit versions."""
    encoder, data = online_encoders[variant]
    rows = _draw_rows(data, np.random.default_rng(seed), 3)
    scaled = rows * 10.0**-exponent
    for small, reference in zip(
        encoder.encode_batch(scaled), encoder.encode_batch(rows)
    ):
        assert small.cluster_index == reference.cluster_index
        # Normalizing the scaled row reproduces the unit row only to
        # rounding, so the fine-tune may wander a few ulps differently.
        assert abs(small.ideal_fidelity - reference.ideal_fidelity) < 1e-6


@given(st.integers(0, 2**31 - 1), st.sampled_from(_VARIANTS))
def test_batch_size_one_matches_encode(online_encoders, seed, variant):
    """B == 1 runs the sequential engine: the service equals `encode`."""
    encoder, data = online_encoders[variant]
    rng = np.random.default_rng(seed)
    row = data[int(rng.integers(len(data)))]
    reference = encoder.encode(row)
    service = EncodingService(max_batch=1)
    service.register("k", encoder)
    response = service.submit(row, key="k").result(flush=False)
    assert response.cluster_index == reference.cluster_index
    assert abs(response.fidelity - reference.ideal_fidelity) < 1e-12
    assert list(response.circuit) == list(reference.circuit)


@given(
    st.integers(0, 2**31 - 1),
    st.sampled_from(_VARIANTS),
    st.integers(2, 5),
)
def test_template_and_full_lowering_agree(
    online_encoders, seed, variant, batch_size
):
    """Template-mode lowering == full per-sample transpile, gate for gate."""
    encoder, data = online_encoders[variant]
    rows = _draw_rows(data, np.random.default_rng(seed), batch_size)
    fast = encoder.encode_batch(rows, use_template=True)
    full = encoder.encode_batch(rows, use_template=False)
    for a, b in zip(fast, full):
        assert np.array_equal(a.theta, b.theta)
        assert list(a.circuit) == list(b.circuit)


def test_zero_norm_row_rejected(online_encoders):
    """Below the normalization floor the pipeline refuses, batched or not."""
    encoder, data = online_encoders[(4, 1)]
    rows = data[:3].copy()
    rows[1] = 0.0
    with pytest.raises(OptimizationError, match="zero sample row"):
        encoder.encode_batch(rows)
    with pytest.raises(OptimizationError):
        encoder.encode_batch(data[:2] * 1e-13)  # under the 1e-12 floor
