"""Unit tests for the VQC classifier head and QML model."""

import numpy as np
import pytest

from repro.errors import DataError, OptimizationError
from repro.qml import QMLClassifier, VariationalClassifier
from repro.quantum import DensityMatrix, Statevector


def test_vqc_parameter_count():
    assert VariationalClassifier(4, 2).num_parameters == 16
    assert VariationalClassifier(8, 3).num_parameters == 48


def test_vqc_circuit_structure():
    vqc = VariationalClassifier(3, 2)
    qc = vqc.circuit(np.zeros(12))
    counts = qc.count_ops()
    assert counts["ry"] == 6
    assert counts["rz"] == 6
    assert counts["cx"] == 4


def test_vqc_parameter_validation():
    with pytest.raises(OptimizationError):
        VariationalClassifier(3, 2).circuit(np.zeros(5))
    with pytest.raises(OptimizationError):
        VariationalClassifier(1)


def test_expectation_range(rng):
    vqc = VariationalClassifier(3, 2)
    theta = rng.uniform(-np.pi, np.pi, vqc.num_parameters)
    state = Statevector.zero_state(3)
    value = vqc.expectation_z0(state, theta)
    assert -1.0 <= value <= 1.0


def test_expectation_identity_circuit():
    vqc = VariationalClassifier(2, 1)
    theta = np.zeros(vqc.num_parameters)
    # Identity rotations + CX on |00> leaves <Z_0> = +1.
    assert vqc.expectation_z0(
        Statevector.zero_state(2), theta
    ) == pytest.approx(1.0)


def test_expectation_accepts_density_matrix(rng):
    vqc = VariationalClassifier(2, 1)
    theta = rng.uniform(-1, 1, vqc.num_parameters)
    psi = Statevector.zero_state(2)
    rho = DensityMatrix.from_statevector(psi)
    assert vqc.expectation_z0(rho, theta) == pytest.approx(
        vqc.expectation_z0(psi, theta)
    )


def test_decision_is_binary(rng):
    vqc = VariationalClassifier(2, 1)
    theta = rng.uniform(-np.pi, np.pi, vqc.num_parameters)
    assert vqc.decision(Statevector.zero_state(2), theta) in (0, 1)


def _separable_problem():
    """States |00..> (class 0) vs |10..> (class 1): trivially separable."""
    zero = Statevector.zero_state(3)
    one = Statevector.zero_state(3)
    one.apply_gate(np.array([[0, 1], [1, 0]], dtype=complex), (0,))
    states = [zero, one] * 6
    labels = np.array([0, 1] * 6)
    return states, labels


def test_training_learns_separable_problem():
    states, labels = _separable_problem()
    model = QMLClassifier(3, num_layers=1, seed=0)
    model.fit(states, labels, num_steps=60)
    assert model.accuracy(states, labels) == pytest.approx(1.0)


def test_training_reduces_loss():
    states, labels = _separable_problem()
    model = QMLClassifier(3, num_layers=1, seed=1)
    initial = model.loss(states, labels)
    history = model.fit(states, labels, num_steps=50)
    assert history.losses[-1] <= initial + 1e-9


def test_predict_shape():
    states, labels = _separable_problem()
    model = QMLClassifier(3, num_layers=1, seed=2)
    model.fit(states, labels, num_steps=30)
    assert model.predict(states).shape == labels.shape


def test_fit_validates_labels():
    states, _ = _separable_problem()
    model = QMLClassifier(3, seed=0)
    with pytest.raises(DataError):
        model.fit(states, np.arange(len(states)))
    with pytest.raises(DataError):
        model.fit(states, np.zeros(3))


def test_fit_rejects_empty_states():
    model = QMLClassifier(3, seed=0)
    with pytest.raises(DataError):
        model.fit([], np.empty(0, dtype=int))


def test_fit_rejects_negative_and_multiclass_labels():
    states, labels = _separable_problem()
    model = QMLClassifier(3, seed=0)
    with pytest.raises(DataError):
        model.fit(states, np.where(labels == 0, -1, 1))
    with pytest.raises(DataError):
        model.fit(states, labels + 1)


def test_loss_and_accuracy_validate_too():
    states, labels = _separable_problem()
    model = QMLClassifier(3, seed=0)
    with pytest.raises(DataError):
        model.loss(states, labels[:-1])
    with pytest.raises(DataError):
        model.accuracy([], np.empty(0, dtype=int))


def test_expectations_z0_matches_per_state_loop(rng):
    """The batched-over-states reference call (circuit built once per
    theta) must agree exactly with one-at-a-time evaluation."""
    vqc = VariationalClassifier(3, 2)
    theta = rng.uniform(-np.pi, np.pi, vqc.num_parameters)
    raw = rng.normal(size=(5, 8)) + 1j * rng.normal(size=(5, 8))
    raw /= np.linalg.norm(raw, axis=1, keepdims=True)
    states = [Statevector(row, validate=False) for row in raw]
    batched = vqc.expectations_z0(states, theta)
    singles = np.array([vqc.expectation_z0(s, theta) for s in states])
    np.testing.assert_array_equal(batched, singles)
    # An amplitude matrix is accepted directly.
    np.testing.assert_allclose(
        vqc.expectations_z0(raw, theta), singles, atol=1e-14
    )


def test_density_matrix_states_fall_back_to_reference_engine():
    states, labels = _separable_problem()
    rhos = [DensityMatrix.from_statevector(s) for s in states]
    model = QMLClassifier(3, num_layers=1, seed=0)
    model.fit(rhos, labels, num_steps=20)
    pure = QMLClassifier(3, num_layers=1, seed=0)
    pure.fit(states, labels, num_steps=20)
    # Pure-state density matrices carry the same physics; the two fits
    # share the RNG stream, so trajectories agree to float noise.
    np.testing.assert_allclose(model.theta, pure.theta, atol=1e-9)
    assert model.accuracy(rhos, labels) == pure.accuracy(states, labels)
