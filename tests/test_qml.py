"""Unit tests for the VQC classifier head and QML model."""

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.qml import QMLClassifier, VariationalClassifier
from repro.quantum import DensityMatrix, Statevector


def test_vqc_parameter_count():
    assert VariationalClassifier(4, 2).num_parameters == 16
    assert VariationalClassifier(8, 3).num_parameters == 48


def test_vqc_circuit_structure():
    vqc = VariationalClassifier(3, 2)
    qc = vqc.circuit(np.zeros(12))
    counts = qc.count_ops()
    assert counts["ry"] == 6
    assert counts["rz"] == 6
    assert counts["cx"] == 4


def test_vqc_parameter_validation():
    with pytest.raises(OptimizationError):
        VariationalClassifier(3, 2).circuit(np.zeros(5))
    with pytest.raises(OptimizationError):
        VariationalClassifier(1)


def test_expectation_range(rng):
    vqc = VariationalClassifier(3, 2)
    theta = rng.uniform(-np.pi, np.pi, vqc.num_parameters)
    state = Statevector.zero_state(3)
    value = vqc.expectation_z0(state, theta)
    assert -1.0 <= value <= 1.0


def test_expectation_identity_circuit():
    vqc = VariationalClassifier(2, 1)
    theta = np.zeros(vqc.num_parameters)
    # Identity rotations + CX on |00> leaves <Z_0> = +1.
    assert vqc.expectation_z0(
        Statevector.zero_state(2), theta
    ) == pytest.approx(1.0)


def test_expectation_accepts_density_matrix(rng):
    vqc = VariationalClassifier(2, 1)
    theta = rng.uniform(-1, 1, vqc.num_parameters)
    psi = Statevector.zero_state(2)
    rho = DensityMatrix.from_statevector(psi)
    assert vqc.expectation_z0(rho, theta) == pytest.approx(
        vqc.expectation_z0(psi, theta)
    )


def test_decision_is_binary(rng):
    vqc = VariationalClassifier(2, 1)
    theta = rng.uniform(-np.pi, np.pi, vqc.num_parameters)
    assert vqc.decision(Statevector.zero_state(2), theta) in (0, 1)


def _separable_problem():
    """States |00..> (class 0) vs |10..> (class 1): trivially separable."""
    zero = Statevector.zero_state(3)
    one = Statevector.zero_state(3)
    one.apply_gate(np.array([[0, 1], [1, 0]], dtype=complex), (0,))
    states = [zero, one] * 6
    labels = np.array([0, 1] * 6)
    return states, labels


def test_training_learns_separable_problem():
    states, labels = _separable_problem()
    model = QMLClassifier(3, num_layers=1, seed=0)
    model.fit(states, labels, num_steps=60)
    assert model.accuracy(states, labels) == pytest.approx(1.0)


def test_training_reduces_loss():
    states, labels = _separable_problem()
    model = QMLClassifier(3, num_layers=1, seed=1)
    initial = model.loss(states, labels)
    history = model.fit(states, labels, num_steps=50)
    assert history.losses[-1] <= initial + 1e-9


def test_predict_shape():
    states, labels = _separable_problem()
    model = QMLClassifier(3, num_layers=1, seed=2)
    model.fit(states, labels, num_steps=30)
    assert model.predict(states).shape == labels.shape


def test_fit_validates_labels():
    states, _ = _separable_problem()
    model = QMLClassifier(3, seed=0)
    with pytest.raises(OptimizationError):
        model.fit(states, np.arange(len(states)))
    with pytest.raises(OptimizationError):
        model.fit(states, np.zeros(3))
