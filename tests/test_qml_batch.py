"""Batched == per-sample equivalence for the QML layer, plus serving tests.

The contract under test: the batched training/inference path (template
bind + one stacked statevector propagation through
:class:`repro.core.batch.VQCObjective`) must reproduce the sequential
per-state reference (:class:`repro.qml.vqc.VariationalClassifier`) to
well under 1e-12 on every margin, loss, and prediction — and the whole
SPSA trajectory when both engines share one RNG stream.
"""

import json

import numpy as np
import pytest

from repro.core.batch import VQCObjective
from repro.core.config import EnQodeConfig, QMLConfig
from repro.core.encoder import EnQodeEncoder
from repro.core.serialization import save_encoder
from repro.errors import (
    DataError,
    OptimizationError,
    SerializationError,
    ServiceError,
)
from repro.hardware.backend import brisbane_linear_segment
from repro.qml import (
    QMLClassifier,
    QMLModel,
    TrainableEmbedding,
    VQCAnsatz,
    load_qml_model,
    save_qml_model,
)
from repro.qml.vqc import VariationalClassifier
from repro.service import EncodingService
from repro.service.registry import EncoderRegistry
from repro.transpile.template import transpile_template


def _random_states(rng, num_qubits, batch):
    raw = rng.normal(size=(batch, 2**num_qubits)) + 1j * rng.normal(
        size=(batch, 2**num_qubits)
    )
    return raw / np.linalg.norm(raw, axis=1, keepdims=True)


def _objective_pair(rng, num_qubits, num_layers, batch, margin=0.4):
    states = _random_states(rng, num_qubits, batch)
    labels = rng.integers(0, 2, size=batch)
    vqc = VariationalClassifier(num_qubits, num_layers)
    template = transpile_template(
        vqc.ansatz(), brisbane_linear_segment(num_qubits), 1
    )
    return vqc, VQCObjective(template, states, labels, margin), states, labels


# -- template form of the ansatz ----------------------------------------------------


@pytest.mark.parametrize("num_qubits,num_layers", [(2, 1), (3, 2), (4, 3), (6, 2)])
def test_vqc_template_has_trivial_layout(num_qubits, num_layers):
    template = transpile_template(
        VQCAnsatz(num_qubits, num_layers),
        brisbane_linear_segment(num_qubits),
        1,
    )
    assert template.has_trivial_layout
    assert template.num_physical_qubits == num_qubits


@pytest.mark.parametrize("num_qubits,num_layers", [(2, 1), (3, 2), (5, 2)])
def test_vqc_ansatz_matches_eager_circuit(rng, num_qubits, num_layers):
    """The Rz-only decomposed form and the eager Ry/Rz form are the same
    unitary family: identical <Z_0> on random states and thetas."""
    vqc = VariationalClassifier(num_qubits, num_layers)
    ansatz = vqc.ansatz()
    assert ansatz.num_parameters == vqc.num_parameters
    states = _random_states(rng, num_qubits, 4)
    for _ in range(3):
        theta = rng.uniform(-np.pi, np.pi, vqc.num_parameters)
        eager = vqc.expectations_z0(states, theta)
        from repro.quantum.statevector import Statevector

        decomposed = np.array(
            [
                VariationalClassifier._z0_from_probs(
                    Statevector(row, validate=False)
                    .evolve(ansatz.circuit(theta))
                    .probabilities()
                )
                for row in states
            ]
        )
        np.testing.assert_allclose(decomposed, eager, atol=1e-13)


# -- objective equivalence ----------------------------------------------------------


@pytest.mark.parametrize(
    "num_qubits,num_layers,batch",
    [(2, 1, 3), (3, 2, 8), (4, 2, 16), (6, 1, 5), (8, 2, 4)],
)
def test_batched_margins_match_reference(rng, num_qubits, num_layers, batch):
    vqc, objective, states, labels = _objective_pair(
        rng, num_qubits, num_layers, batch
    )
    signs = 1.0 - 2.0 * labels.astype(float)
    for _ in range(3):
        theta = rng.uniform(-np.pi, np.pi, vqc.num_parameters)
        reference = signs * vqc.expectations_z0(states, theta)
        batched = objective.margins(theta)
        assert np.abs(batched - reference).max() <= 1e-12


@pytest.mark.parametrize("num_qubits,num_layers,batch", [(3, 2, 8), (6, 2, 6)])
def test_batched_losses_match_reference(rng, num_qubits, num_layers, batch):
    vqc, objective, states, labels = _objective_pair(
        rng, num_qubits, num_layers, batch
    )
    signs = 1.0 - 2.0 * labels.astype(float)
    thetas = rng.uniform(-np.pi, np.pi, (4, vqc.num_parameters))
    batched = objective.losses(thetas)
    for k, theta in enumerate(thetas):
        margins = signs * vqc.expectations_z0(states, theta)
        reference = np.maximum(0.0, 0.4 - margins).mean()
        assert abs(batched[k] - reference) <= 1e-12


def test_batched_predictions_match_reference(rng):
    vqc, objective, states, _ = _objective_pair(rng, 4, 2, 12)
    theta = rng.uniform(-np.pi, np.pi, vqc.num_parameters)
    reference = (vqc.expectations_z0(states, theta) < 0.0).astype(int)
    np.testing.assert_array_equal(objective.predictions(theta), reference)


def test_objective_minibatch_indices(rng):
    vqc, objective, states, labels = _objective_pair(rng, 3, 2, 10)
    theta = rng.uniform(-np.pi, np.pi, vqc.num_parameters)
    indices = np.array([7, 2, 5])
    sub = objective.margins(theta, indices)
    full = objective.margins(theta)
    np.testing.assert_allclose(sub, full[indices], atol=1e-14)


def test_objective_validation(rng):
    vqc, objective, states, labels = _objective_pair(rng, 3, 1, 4)
    template = objective.template
    with pytest.raises(OptimizationError):
        VQCObjective(template, states[:, :4], labels)  # wrong width
    with pytest.raises(OptimizationError):
        VQCObjective(template, states[:0], labels[:0])  # empty
    with pytest.raises(OptimizationError):
        VQCObjective(template, states, labels[:-1])  # length mismatch
    with pytest.raises(OptimizationError):
        VQCObjective(template, states, labels + 1)  # non-binary
    with pytest.raises(OptimizationError):
        VQCObjective(template, states, labels, margin=0.0)


# -- SPSA trajectory equivalence ----------------------------------------------------


@pytest.mark.parametrize(
    "num_qubits,num_layers,batch,minibatch",
    [(2, 1, 6, None), (3, 2, 10, None), (4, 1, 8, 3)],
)
def test_spsa_trajectories_match(rng, num_qubits, num_layers, batch, minibatch):
    """Both engines share one RNG stream, so whole training runs agree
    step for step (1e-9 allows float non-associativity to compound)."""
    states = _random_states(rng, num_qubits, batch)
    labels = rng.integers(0, 2, size=batch)
    kwargs = dict(
        num_qubits=num_qubits,
        num_layers=num_layers,
        num_steps=20,
        seed=7,
        minibatch_size=minibatch,
    )
    batched = QMLClassifier(config=QMLConfig(**kwargs))
    reference = QMLClassifier(config=QMLConfig(engine="reference", **kwargs))
    history_b = batched.fit(states, labels)
    history_r = reference.fit(states, labels)
    assert np.abs(batched.theta - reference.theta).max() <= 1e-9
    assert (
        np.abs(np.array(history_b.losses) - np.array(history_r.losses)).max()
        <= 1e-9
    )
    np.testing.assert_array_equal(
        batched.predict(states), reference.predict(states)
    )
    assert (
        np.abs(
            batched.decision_values(states)
            - reference.decision_values(states)
        ).max()
        <= 1e-12
    )


# -- trainable embedding + pipeline transparency ------------------------------------


def _fitted_encoder(rng, num_qubits=3, preprocessor=None, input_size=None):
    backend = brisbane_linear_segment(num_qubits)
    config = EnQodeConfig(
        num_qubits=num_qubits,
        num_layers=3,
        offline_restarts=2,
        max_clusters=4,
        min_cluster_fidelity=0.5,
    )
    width = input_size if input_size is not None else 2**num_qubits
    samples = np.abs(rng.normal(size=(20, width))) + 0.05
    encoder = EnQodeEncoder(backend, config, preprocessor=preprocessor)
    encoder.fit(samples)
    return encoder, samples, backend


def test_preprocessor_is_transparent_to_encode_paths(rng):
    pre = TrainableEmbedding(12, 8, seed=3)
    encoder, samples, _ = _fitted_encoder(
        rng, preprocessor=pre, input_size=12
    )
    assert encoder.input_size == 12
    assert encoder.pipeline.input_size == 12
    batch = encoder.encode_batch(samples[:4])
    # The embedded targets are exactly the preprocessed rows ...
    np.testing.assert_allclose(
        np.stack([e.target for e in batch]),
        pre.transform(samples[:4]),
        atol=1e-15,
    )
    # ... and one-off encode accepts the same raw width.
    one = encoder.encode(samples[0])
    assert one.target.shape == (8,)


def test_preprocessor_width_and_kwarg_guards(rng):
    pre = TrainableEmbedding(12, 8, seed=3)
    encoder, samples, _ = _fitted_encoder(
        rng, preprocessor=pre, input_size=12
    )
    with pytest.raises(OptimizationError):
        encoder.encode(np.ones(8))  # raw width, not the preprocessor's
    with pytest.raises(OptimizationError):
        encoder.encode_batch(samples[:2], normalize=False)
    with pytest.raises(OptimizationError):
        EnQodeEncoder(
            brisbane_linear_segment(3),
            EnQodeConfig(num_qubits=3),
            preprocessor=TrainableEmbedding(12, 4),  # wrong output width
        )


def test_trainable_embedding_fit_improves_separation(rng):
    emb = TrainableEmbedding(10, seed=5)
    samples = rng.normal(size=(24, 10))
    samples[12:] += 1.5
    labels = np.repeat([0, 1], 12)
    trace = emb.fit(samples, labels, num_steps=30)
    assert trace[-1] >= trace[0]
    with pytest.raises(DataError):
        emb.transform(np.ones((2, 7)))
    with pytest.raises(DataError):
        emb.transform(np.zeros((1, 10)))


def test_encoder_bundle_roundtrips_preprocessor(rng, tmp_path):
    pre = TrainableEmbedding(12, 8, seed=3)
    encoder, samples, backend = _fitted_encoder(
        rng, preprocessor=pre, input_size=12
    )
    path = tmp_path / "enc.json"
    save_encoder(encoder, path)
    registry = EncoderRegistry()
    reloaded = registry.load("k", path, backend)
    assert reloaded.input_size == 12
    a = encoder.encode_batch(samples[:3])
    b = reloaded.encode_batch(samples[:3])
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x.theta, y.theta)


# -- classifier bundles + service predict -------------------------------------------


def _trained_model(rng, num_qubits=3):
    encoder, samples, backend = _fitted_encoder(rng, num_qubits=num_qubits)
    labels = np.repeat([0, 1], samples.shape[0] // 2)
    classifier = QMLClassifier(
        config=QMLConfig(num_qubits=num_qubits, num_layers=2, num_steps=30, seed=1)
    )
    model = QMLModel(encoder, classifier)
    classifier.fit(model.embed(samples), labels)
    return model, samples, labels, backend


def test_model_bundle_roundtrip_identical_predictions(rng, tmp_path):
    model, samples, labels, backend = _trained_model(rng)
    path = tmp_path / "model.json"
    save_qml_model(model, path)
    registry = EncoderRegistry()
    reloaded = registry.load_model("pair", path, backend)
    np.testing.assert_array_equal(
        model.predict(samples), reloaded.predict(samples)
    )
    np.testing.assert_array_equal(
        reloaded.predict(samples), reloaded.predict_reference(samples)
    )
    assert registry.model("pair") is reloaded
    # The bundle's encoder occupies the same encoder slot.
    assert registry.get("pair") is reloaded.encoder


def test_model_bundle_schema_mismatch_rejected(rng, tmp_path):
    model, _, _, backend = _trained_model(rng)
    path = tmp_path / "model.json"
    save_qml_model(model, path)
    payload = json.loads(path.read_text())
    payload["schema_version"] = 99
    payload["format_version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(SerializationError):
        load_qml_model(path, backend)
    # An encoder-only bundle is not a classifier bundle.
    save_encoder(model.encoder, path)
    with pytest.raises(SerializationError):
        load_qml_model(path, backend)


def test_service_predict_matches_model(rng):
    model, samples, labels, _ = _trained_model(rng)
    service = EncodingService(max_batch=8)
    service.register_model("pair", model)
    np.testing.assert_array_equal(
        service.predict(samples), model.predict(samples)
    )
    # Implicit key with exactly one model; explicit key otherwise.
    np.testing.assert_array_equal(
        service.predict(samples[:2], key="pair"), model.predict(samples[:2])
    )
    assert service.stats().predictions_completed == samples.shape[0] + 2
    with pytest.raises(ServiceError):
        service.predict(samples[:, :-1])
    with pytest.raises(ServiceError):
        service.predict(samples, key="missing")


def test_service_predict_requires_model(rng):
    encoder, samples, _ = _fitted_encoder(rng)
    service = EncodingService()
    service.register("enc", encoder)
    with pytest.raises(ServiceError):
        service.predict(samples)
    with pytest.raises(ServiceError):
        EncodingService().register_model("x", object())
