"""Unit tests for random state/unitary generation."""

import numpy as np
import pytest

from repro.quantum import random_real_amplitudes, random_statevector, random_unitary
from repro.utils.linalg import is_unitary


def test_random_statevector_normalized():
    psi = random_statevector(4, seed=0)
    assert np.linalg.norm(psi.data) == pytest.approx(1.0)
    assert psi.num_qubits == 4


def test_random_statevector_seeded_reproducible():
    a = random_statevector(3, seed=7).data
    b = random_statevector(3, seed=7).data
    assert np.allclose(a, b)


def test_random_statevector_different_seeds_differ():
    a = random_statevector(3, seed=1).data
    b = random_statevector(3, seed=2).data
    assert not np.allclose(a, b)


def test_random_real_amplitudes_unit_norm():
    vec = random_real_amplitudes(256, seed=3)
    assert vec.dtype == np.float64
    assert np.linalg.norm(vec) == pytest.approx(1.0)


def test_random_unitary_is_unitary():
    for n in (1, 2, 3):
        assert is_unitary(random_unitary(n, seed=n))


def test_random_unitary_reproducible():
    assert np.allclose(random_unitary(2, seed=5), random_unitary(2, seed=5))
