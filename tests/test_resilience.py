"""Tests for the serving resilience layer.

Covers the PR-9 acceptance criteria on the deterministic side:
admission control (queue budgets, reject vs degrade-shed policies),
per-request deadlines through the batcher and flush path, flush retry
with backoff and a transient classifier, per-key circuit breakers,
the stop-without-drain ticket-rejection regression, the resilience
primitives themselves (FaultInjector / CircuitBreaker / RetryPolicy),
and the Prometheus metrics export.  The probabilistic chaos runs live
in test_chaos.py.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import EnQodeConfig, EnQodeEncoder, ServiceConfig
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadError,
    ServiceError,
)
from repro.service import (
    CircuitBreaker,
    EncodeRequest,
    EncodingService,
    FaultInjector,
    FaultRule,
    InjectedFault,
    MicroBatcher,
    RetryPolicy,
    ServiceStats,
    WorkerDeath,
    default_transient_classifier,
)

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def cluster_data():
    """Two tight clusters of unit vectors in R^16."""
    rng = np.random.default_rng(77)
    centers = rng.normal(size=(2, 16))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    blocks = []
    for center in centers:
        block = center + 0.04 * rng.normal(size=(24, 16))
        blocks.append(block / np.linalg.norm(block, axis=1, keepdims=True))
    return np.concatenate(blocks)


@pytest.fixture(scope="module")
def fitted(segment4, cluster_data):
    config = EnQodeConfig(
        num_qubits=4,
        num_layers=5,
        offline_restarts=2,
        offline_max_iterations=300,
        online_max_iterations=50,
        max_clusters=4,
        seed=11,
    )
    encoder = EnQodeEncoder(segment4, config)
    encoder.fit(cluster_data)
    return encoder


class ManualClock:
    """Injectable monotonic clock for deterministic deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def _conserved(stats) -> bool:
    return stats.requests_submitted == (
        stats.requests_completed
        + stats.requests_failed
        + stats.rejected
        + stats.requests_pending
    )


# -- config validation -----------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_pending_per_key": 0},
        {"max_pending_total": -1},
        {"overload_policy": "panic"},
        {"flush_timeout": 0.0},
        {"retry_attempts": -1},
        {"retry_backoff": -0.1},
        {"retry_jitter": 1.5},
        {"breaker_threshold": 0},
        {"breaker_reset_timeout": -1.0},
    ],
)
def test_resilience_config_validation(kwargs):
    with pytest.raises(ServiceError):
        ServiceConfig(**kwargs)


def test_resilience_knobs_reach_service_config():
    service = EncodingService(
        max_pending_per_key=3,
        max_pending_total=10,
        overload_policy="degrade",
        retry_attempts=2,
        breaker_threshold=5,
    )
    assert service.config.max_pending_per_key == 3
    assert service.config.max_pending_total == 10
    assert service.config.overload_policy == "degrade"
    assert service.config.retry_attempts == 2
    assert service.config.breaker_threshold == 5


# -- admission control -----------------------------------------------------------------


def test_per_key_budget_rejects_with_typed_error(fitted, cluster_data):
    service = EncodingService(max_batch=100, max_pending_per_key=2)
    service.register("a", fitted)
    tickets = [service.submit(x, key="a") for x in cluster_data[:2]]
    with pytest.raises(OverloadError, match="queue budget"):
        service.submit(cluster_data[2], key="a")
    stats = service.stats()
    assert stats.rejected == 1
    assert stats.requests_submitted == 3
    assert stats.requests_pending == 2
    assert _conserved(stats)
    # The queued requests are unharmed: they flush and serve normally.
    service.flush()
    assert all(t.done and not t.response.degraded for t in tickets)


def test_global_budget_spans_keys(fitted, cluster_data):
    service = EncodingService(max_batch=100, max_pending_total=2)
    service.register("a", fitted)
    service.register("b", fitted)
    service.submit(cluster_data[0], key="a")
    service.submit(cluster_data[1], key="b")
    with pytest.raises(OverloadError):
        service.submit(cluster_data[2], key="a")
    assert service.stats().rejected == 1
    service.flush()
    assert _conserved(service.stats())


def test_rejected_submission_leaves_no_ticket_behind(fitted, cluster_data):
    service = EncodingService(max_batch=100, max_pending_per_key=1)
    service.register("a", fitted)
    service.submit(cluster_data[0], key="a")
    before = dict(service._tickets)
    with pytest.raises(OverloadError):
        service.submit(cluster_data[1], key="a")
    assert service._tickets == before  # nothing leaked


# -- graceful degradation --------------------------------------------------------------


def test_degrade_policy_sheds_inline(fitted, cluster_data):
    service = EncodingService(
        max_batch=100, max_pending_per_key=1, overload_policy="degrade"
    )
    service.register("a", fitted)
    queued = service.submit(cluster_data[0], key="a")
    shed = service.submit(cluster_data[1], key="a")
    # The shed ticket resolved inline, without touching the queue.
    assert shed.done
    assert shed.response.degraded
    assert shed.response.flush_id == -1
    assert shed.response.batch_size == 1
    assert service.pending == 1
    stats = service.stats()
    assert stats.shed_degraded == 1
    assert stats.requests_completed == 1
    assert stats.rejected == 0
    assert _conserved(stats)
    service.flush()
    assert queued.done and not queued.response.degraded


def test_degraded_response_is_finetune_skipped_centroid(
    fitted, cluster_data
):
    """The shed path == run_degraded == the routed cluster's centroid."""
    service = EncodingService(
        max_batch=100, max_pending_per_key=1, overload_policy="degrade"
    )
    service.register("a", fitted)
    service.submit(cluster_data[0], key="a")
    sample = cluster_data[7]
    shed = service.submit(sample, key="a")
    response = shed.result()

    reference = fitted.pipeline.run_degraded(sample[np.newaxis, :])[0]
    assert np.array_equal(response.encoded.theta, reference.theta)
    assert response.encoded.ideal_fidelity == reference.ideal_fidelity
    assert list(response.circuit) == list(reference.circuit)
    # Finetune was skipped: theta is exactly the routed centroid and no
    # optimizer work happened.
    centroid = fitted._transfer.cluster_thetas[response.cluster_index]
    assert np.array_equal(response.encoded.theta, centroid)
    assert response.encoded.optimizer_iterations == 0
    assert response.encoded.optimizer_evaluations == 0


def test_degraded_fidelity_is_honest(fitted, cluster_data):
    """Shed responses report true (centroid) fidelity, not the polished one."""
    sample = cluster_data[3]
    service = EncodingService(
        max_batch=100, max_pending_per_key=1, overload_policy="degrade"
    )
    service.register("a", fitted)
    service.submit(cluster_data[0], key="a")
    degraded = service.submit(sample, key="a").result()
    polished = fitted.encode(sample)
    assert degraded.fidelity <= polished.ideal_fidelity + 1e-12


# -- per-request deadlines -------------------------------------------------------------


def test_submit_rejects_nonpositive_deadline(fitted, cluster_data):
    service = EncodingService(max_batch=4)
    service.register("a", fitted)
    with pytest.raises(ServiceError, match="deadline"):
        service.submit(cluster_data[0], key="a", deadline=0.0)
    assert service.stats().requests_submitted == 0


def test_expired_request_fails_without_pipeline_work(fitted, cluster_data):
    clock = ManualClock()
    service = EncodingService(max_batch=100, clock=clock)
    service.register("a", fitted)
    ticket = service.submit(cluster_data[0], key="a", deadline=1.0)
    clock.advance(2.0)
    # poll() treats the expiry as a flush trigger and drains the key;
    # the expired request is failed before the pipeline runs.
    responses = service.poll()
    assert responses == []
    assert ticket.failed
    with pytest.raises(DeadlineExceededError, match="deadline"):
        ticket.result()
    stats = service.stats()
    assert stats.deadline_expired == 1
    assert stats.requests_failed == 1
    assert stats.num_flushes == 0  # no pipeline work was spent
    assert _conserved(stats)


def test_expiry_spares_batchmates(fitted, cluster_data):
    """One expired request does not poison the rest of its micro-batch."""
    clock = ManualClock()
    service = EncodingService(max_batch=100, clock=clock)
    service.register("a", fitted)
    doomed = service.submit(cluster_data[0], key="a", deadline=1.0)
    healthy = service.submit(cluster_data[1], key="a")
    clock.advance(5.0)
    service.flush()
    assert doomed.failed
    assert healthy.done
    assert healthy.response.batch_size == 1  # expired rows dropped first
    stats = service.stats()
    assert stats.deadline_expired == 1
    assert stats.requests_completed == 1
    assert _conserved(stats)


def test_batcher_per_request_deadline_is_a_trigger():
    batcher = MicroBatcher(max_batch=10, max_delay=None)
    batcher.add(
        EncodeRequest(
            request_id=0, key="a", sample=np.ones(4), submitted_at=0.0,
            deadline=1.5,
        )
    )
    assert batcher.due_keys(1.0) == []
    assert batcher.due_keys(1.5) == ["a"]  # exact hit counts (>=)
    assert batcher.next_deadline() == 1.5


def test_batcher_next_deadline_min_of_queue_and_request():
    batcher = MicroBatcher(max_batch=10, max_delay=5.0)
    batcher.add(
        EncodeRequest(
            request_id=0, key="a", sample=np.ones(4), submitted_at=0.0,
            deadline=2.0,
        )
    )
    # Queue deadline would be 5.0; the request's own 2.0 wins.
    assert batcher.next_deadline() == 2.0
    assert batcher.next_deadline(exclude={"a"}) is None


def test_drain_culls_expired_request_beyond_the_batch_window():
    """Regression: an expired request at position max_batch + 1 must be
    culled at drain time, not stranded behind the batch window.

    Before the fix, ``drain`` took the first ``max_batch`` requests and
    left the rest queued — an already-expired straggler at position 5
    of a 4-wide window survived the drain, kept re-arming the deadline
    trigger, and its ticket was only failed whenever it eventually
    aged into a later window."""
    batcher = MicroBatcher(max_batch=4, max_delay=None)
    for i in range(4):
        batcher.add(
            EncodeRequest(i, "a", np.ones(4), submitted_at=0.0)
        )
    batcher.add(
        EncodeRequest(4, "a", np.ones(4), submitted_at=0.0, deadline=1.0)
    )
    drained = batcher.drain("a", now=2.0)
    # The window's four live requests plus the expired fifth, in order;
    # the flush's expiry sweep fails the expired one before pipeline
    # work is spent.
    assert [r.request_id for r in drained] == [0, 1, 2, 3, 4]
    assert batcher.pending() == 0


def test_drain_without_now_keeps_the_window_contract():
    """No clock, no cull: drain(key) is exactly the old window slice."""
    batcher = MicroBatcher(max_batch=2, max_delay=None)
    for i in range(3):
        batcher.add(
            EncodeRequest(i, "a", np.ones(4), submitted_at=0.0, deadline=0.5)
        )
    assert [r.request_id for r in batcher.drain("a")] == [0, 1]
    assert batcher.pending("a") == 1


def test_drain_cull_spares_live_stragglers():
    """The cull takes only *expired* stragglers; live ones stay queued
    in order for the next window."""
    batcher = MicroBatcher(max_batch=2, max_delay=None)
    batcher.add(EncodeRequest(0, "a", np.ones(4), submitted_at=0.0))
    batcher.add(EncodeRequest(1, "a", np.ones(4), submitted_at=0.0))
    batcher.add(
        EncodeRequest(2, "a", np.ones(4), submitted_at=0.0, deadline=1.0)
    )
    batcher.add(EncodeRequest(3, "a", np.ones(4), submitted_at=0.0))
    drained = batcher.drain("a", now=5.0)
    assert [r.request_id for r in drained] == [0, 1, 2]
    assert [r.request_id for r in batcher.drain("a")] == [3]


def test_due_keys_exclude_skips_busy_keys():
    """``due_keys(now, exclude=...)`` must not report an excluded key,
    however overdue — same contract as ``next_deadline(exclude=)``."""
    batcher = MicroBatcher(max_batch=10, max_delay=1.0)
    batcher.add(EncodeRequest(0, "a", np.ones(4), submitted_at=0.0))
    batcher.add(EncodeRequest(1, "b", np.ones(4), submitted_at=0.0))
    assert batcher.due_keys(5.0) == ["a", "b"]
    assert batcher.due_keys(5.0, exclude={"a"}) == ["b"]
    assert batcher.due_keys(5.0, exclude={"a", "b"}) == []


def test_result_timeout_routes_through_injected_clock(fitted, cluster_data):
    """Ticket ``result(timeout=)`` arithmetic runs on the service's
    injected clock, so timeout expiry is testable deterministically:
    nothing will ever serve this ticket (no deadline trigger, partial
    batch, flush=False), and the wait ends exactly when the fake clock
    jumps past the deadline — not after 5 real seconds."""
    clock = ManualClock()
    with EncodingService(
        max_batch=100, backend="thread", clock=clock
    ) as service:
        service.register("a", fitted)
        ticket = service.submit(cluster_data[0], key="a")
        # Jump the fake clock past the deadline from a side thread; the
        # waiting result() call observes it and gives up.
        timer = threading.Timer(0.05, clock.advance, args=(10.0,))
        timer.start()
        start = time.monotonic()
        try:
            with pytest.raises(ServiceError, match="not served within 5"):
                ticket.result(flush=False, timeout=5.0)
        finally:
            timer.cancel()
        # The expiry came from the fake clock, not a real 5s sleep.
        assert time.monotonic() - start < 2.0
        # Timing out does not consume the ticket: a forced flush still
        # serves it.
        assert not ticket.done
        response = ticket.result(timeout=30.0)
        assert response.request_id == ticket.request.request_id


# -- retries ---------------------------------------------------------------------------


def test_transient_flush_failure_retries_to_success(fitted, cluster_data):
    injector = FaultInjector(
        [FaultRule("flush", kind="error", times=2, transient=True)]
    )
    service = EncodingService(
        max_batch=100,
        retry_attempts=3,
        retry_backoff=0.0,
        fault_injector=injector,
    )
    service.register("a", fitted)
    tickets = [service.submit(x, key="a") for x in cluster_data[:3]]
    responses = service.flush()
    assert len(responses) == 3
    assert all(t.done for t in tickets)
    stats = service.stats()
    assert stats.retries == 2
    assert stats.requests_failed == 0
    assert injector.fired_count("flush") == 2
    # The retried flush is numerically untouched: same as encode_batch.
    reference = fitted.encode_batch(np.stack(cluster_data[:3]))
    for response, ref in zip(responses, reference):
        assert np.array_equal(response.encoded.theta, ref.theta)


def test_retry_budget_exhaustion_fails_the_flush(fitted, cluster_data):
    injector = FaultInjector(
        [FaultRule("flush", kind="error", transient=True)]  # forever
    )
    service = EncodingService(
        max_batch=100,
        retry_attempts=2,
        retry_backoff=0.0,
        fault_injector=injector,
    )
    service.register("a", fitted)
    ticket = service.submit(cluster_data[0], key="a")
    with pytest.raises(ServiceError, match="failed"):
        service.flush()
    assert ticket.failed
    stats = service.stats()
    assert stats.retries == 2  # the budget, fully spent
    assert stats.requests_failed == 1
    assert injector.fired_count("flush") == 3  # initial + 2 retries


def test_permanent_failure_is_not_retried(fitted, cluster_data):
    injector = FaultInjector(
        [FaultRule("flush", kind="error", times=1, transient=False)]
    )
    service = EncodingService(
        max_batch=100,
        retry_attempts=5,
        retry_backoff=0.0,
        fault_injector=injector,
    )
    service.register("a", fitted)
    ticket = service.submit(cluster_data[0], key="a")
    with pytest.raises(ServiceError):
        service.flush()
    assert ticket.failed
    assert service.stats().retries == 0


def test_custom_transient_classifier(fitted, cluster_data):
    """A deployment-specific classifier can widen what gets retried."""
    injector = FaultInjector(
        [FaultRule("flush", kind="error", times=1, transient=False)]
    )
    service = EncodingService(
        max_batch=100,
        retry_attempts=2,
        retry_backoff=0.0,
        fault_injector=injector,
        transient_classifier=lambda exc: isinstance(exc, InjectedFault),
    )
    service.register("a", fitted)
    ticket = service.submit(cluster_data[0], key="a")
    service.flush()  # permanent fault, but the classifier retries it
    assert ticket.done
    assert service.stats().retries == 1


def test_retry_sleeps_through_injected_sleeper(fitted, cluster_data):
    sleeps: list = []
    injector = FaultInjector(
        [FaultRule("flush", kind="error", times=2, transient=True)]
    )
    service = EncodingService(
        max_batch=100,
        retry_attempts=3,
        retry_backoff=0.1,
        retry_jitter=0.0,
        fault_injector=injector,
        retry_sleeper=sleeps.append,
    )
    service.register("a", fitted)
    service.submit(cluster_data[0], key="a")
    service.flush()
    assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]  # 2**k


def test_expiry_checked_between_retries(fitted, cluster_data):
    """A request whose deadline passes mid-backoff is not re-run."""
    clock = ManualClock()
    injector = FaultInjector([FaultRule("flush", kind="error")])
    service = EncodingService(
        max_batch=100,
        retry_attempts=10,
        retry_backoff=0.01,  # positive so the injected sleeper runs
        clock=clock,
        fault_injector=injector,
        retry_sleeper=lambda _s: clock.advance(1.0),
    )
    service.register("a", fitted)
    ticket = service.submit(cluster_data[0], key="a", deadline=0.5)
    assert service.flush() == []
    assert ticket.failed
    with pytest.raises(DeadlineExceededError):
        ticket.result()
    stats = service.stats()
    assert stats.retries == 1  # one backoff, then the expiry cut it off
    assert stats.deadline_expired == 1


# -- circuit breaker -------------------------------------------------------------------


def test_breaker_opens_then_half_opens_then_closes(fitted, cluster_data):
    clock = ManualClock()
    injector = FaultInjector(
        [FaultRule("flush", kind="error", times=2, transient=False)]
    )
    service = EncodingService(
        max_batch=100,
        breaker_threshold=2,
        breaker_reset_timeout=10.0,
        clock=clock,
        fault_injector=injector,
    )
    service.register("a", fitted)

    for i in range(2):  # two consecutive flush failures open the breaker
        service.submit(cluster_data[i], key="a")
        with pytest.raises(ServiceError):
            service.flush()
    stats = service.stats()
    assert stats.breaker_opens == 1
    assert stats.requests_failed == 2

    # Open: submissions fail fast with the typed error and count as
    # rejected, conserving the ledger.
    with pytest.raises(CircuitOpenError, match="breaker"):
        service.submit(cluster_data[2], key="a")
    assert service.stats().rejected == 1

    # After the reset timeout a probe is admitted (half-open); the
    # fault rule is exhausted, so it succeeds and closes the breaker.
    clock.advance(10.0)
    probe = service.submit(cluster_data[3], key="a")
    service.flush()
    assert probe.done
    assert service._breakers["a"].state == "closed"
    service.submit(cluster_data[4], key="a")  # freely admitted again
    service.flush()
    assert _conserved(service.stats())


def test_breaker_reopens_on_failed_probe(fitted, cluster_data):
    clock = ManualClock()
    injector = FaultInjector(
        [FaultRule("flush", kind="error", times=3, transient=False)]
    )
    service = EncodingService(
        max_batch=100,
        breaker_threshold=2,
        breaker_reset_timeout=10.0,
        clock=clock,
        fault_injector=injector,
    )
    service.register("a", fitted)
    for i in range(2):
        service.submit(cluster_data[i], key="a")
        with pytest.raises(ServiceError):
            service.flush()
    clock.advance(10.0)
    service.submit(cluster_data[2], key="a")  # half-open probe
    with pytest.raises(ServiceError):
        service.flush()  # probe fails -> straight back to open
    assert service.stats().breaker_opens == 2
    with pytest.raises(CircuitOpenError):
        service.submit(cluster_data[3], key="a")


def test_breakers_are_per_key(fitted, cluster_data):
    injector = FaultInjector(
        [FaultRule("flush", kind="error", times=1, transient=False)]
    )
    service = EncodingService(
        max_batch=100, breaker_threshold=1, fault_injector=injector
    )
    service.register("a", fitted)
    service.register("b", fitted)
    service.submit(cluster_data[0], key="a")
    with pytest.raises(ServiceError):
        service.flush("a")
    with pytest.raises(CircuitOpenError):
        service.submit(cluster_data[1], key="a")
    # Key "b" is unaffected by "a"'s open breaker.
    ticket = service.submit(cluster_data[2], key="b")
    service.flush("b")
    assert ticket.done


# -- stop-without-drain regression -----------------------------------------------------


def test_sync_stop_without_drain_fails_pending_tickets(fitted, cluster_data):
    """Regression: queued sync-backend tickets must not hang forever."""
    service = EncodingService(max_batch=100)
    service.register("a", fitted)
    tickets = [service.submit(x, key="a") for x in cluster_data[:3]]
    service.stop(drain=False)
    assert all(t.failed and not t.done for t in tickets)
    with pytest.raises(ServiceError, match="rejected"):
        tickets[0].result()
    stats = service.stats()
    assert stats.requests_failed == 3
    assert stats.requests_pending == 0
    assert _conserved(stats)


def test_thread_result_on_stopped_backend_raises_not_hangs(
    fitted, cluster_data
):
    service = EncodingService(max_batch=100, backend="thread")
    service.register("a", fitted)
    service.start()
    ticket = service.submit(cluster_data[0], key="a")
    service.stop(drain=False)
    # The ticket was already failed by the stop; result() must raise
    # immediately (typed), never block on an event nobody will set.
    with pytest.raises(ServiceError, match="rejected"):
        ticket.result(timeout=5.0)
    assert not service._backend_impl.will_serve


def test_will_serve_lifecycle(fitted, cluster_data):
    service = EncodingService(max_batch=4, backend="thread")
    service.register("a", fitted)
    backend = service._backend_impl
    assert not backend.will_serve  # NEW
    service.start()
    assert backend.will_serve
    service.stop()
    assert not backend.will_serve  # STOPPED


# -- resilience primitives -------------------------------------------------------------


def test_fault_rule_validation():
    with pytest.raises(ServiceError):
        FaultRule("flush", kind="explode")
    with pytest.raises(ServiceError):
        FaultRule("flush", kind="death")  # death only at "worker"
    with pytest.raises(ServiceError):
        FaultRule("flush", probability=1.5)
    with pytest.raises(ServiceError):
        FaultRule("flush", times=-1)
    with pytest.raises(ServiceError):
        FaultRule("flush", latency=-0.1)


def test_injector_times_and_after_schedule():
    injector = FaultInjector(
        [FaultRule("flush", kind="error", after=2, times=2)]
    )
    injector.fire("flush")  # skipped (after)
    injector.fire("flush")  # skipped (after)
    for _ in range(2):
        with pytest.raises(InjectedFault):
            injector.fire("flush")
    injector.fire("flush")  # budget spent: silent again
    assert injector.fired_count() == 2
    assert injector.log == [("flush", "error"), ("flush", "error")]


def test_injector_latency_uses_sleeper_then_error_raises():
    slept: list = []
    injector = FaultInjector(
        [
            FaultRule("finetune", kind="latency", latency=0.25),
            FaultRule("finetune", kind="error", times=1),
        ],
        sleeper=slept.append,
    )
    with pytest.raises(InjectedFault):
        injector.fire("finetune")
    assert slept == [0.25]  # the slow AND failing stage composes


def test_injector_seeded_probability_is_replayable():
    def run(seed):
        injector = FaultInjector(
            [FaultRule("bind", kind="error", probability=0.5)], seed=seed
        )
        outcomes = []
        for _ in range(50):
            try:
                injector.fire("bind")
                outcomes.append(0)
            except InjectedFault:
                outcomes.append(1)
        return outcomes

    assert run(42) == run(42)
    assert run(42) != run(43)  # and the seed actually matters
    assert 0 < sum(run(42)) < 50


def test_worker_death_is_not_a_repro_error():
    from repro.errors import ReproError

    assert not issubclass(WorkerDeath, ReproError)
    with pytest.raises(WorkerDeath):
        FaultInjector(
            [FaultRule("worker", kind="death", times=1)]
        ).fire("worker")


def test_default_transient_classifier():
    assert default_transient_classifier(InjectedFault("flush"))
    assert not default_transient_classifier(
        InjectedFault("flush", transient=False)
    )
    assert not default_transient_classifier(ValueError("width mismatch"))


def test_circuit_breaker_state_machine():
    breaker = CircuitBreaker(threshold=3, reset_timeout=5.0)
    assert breaker.allow(0.0)
    assert not breaker.record_failure(0.0)
    assert not breaker.record_failure(0.0)
    assert breaker.record_failure(1.0)  # third strike opens
    assert breaker.state == "open"
    assert not breaker.allow(3.0)
    assert breaker.allow(6.0)  # reset_timeout elapsed -> half-open probe
    assert breaker.state == "half-open"
    assert breaker.record_failure(6.5)  # failed probe reopens immediately
    assert breaker.opens == 2
    assert breaker.allow(11.5)
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.failures == 0


def test_retry_policy_delay_bounds():
    policy = RetryPolicy(backoff=0.1, jitter=0.5, seed=0)
    for attempt in range(4):
        base = 0.1 * 2**attempt
        for _ in range(20):
            delay = policy.delay(attempt)
            assert base * 0.5 <= delay <= base
    assert RetryPolicy(backoff=0.0).delay(3) == 0.0
    zero_jitter = RetryPolicy(backoff=0.1, jitter=0.0)
    assert zero_jitter.delay(2) == pytest.approx(0.4)


# -- metrics export --------------------------------------------------------------------


def test_to_metrics_exports_served_traffic(fitted, cluster_data):
    service = EncodingService(max_batch=4)
    service.register("digits", fitted)
    for x in cluster_data[:4]:
        service.submit(x, key="digits")
    text = service.stats().to_metrics()
    assert "# TYPE enqode_requests_submitted_total counter" in text
    assert "enqode_requests_submitted_total 4" in text
    assert "enqode_requests_completed_total 4" in text
    assert "enqode_flushes_total 1" in text
    assert 'enqode_request_latency_seconds{quantile="0.5"}' in text
    assert 'enqode_requests_completed_by_key{key="digits"} 4' in text
    assert 'enqode_backend_info{backend="sync"} 1' in text
    assert text.endswith("\n")


def test_to_metrics_skips_nan_gauges_and_escapes_labels():
    stats = ServiceStats(per_key_completed={'we"ird\nkey\\x': 2})
    text = stats.to_metrics(prefix="svc")
    assert "mean_fidelity" not in text  # NaN gauge omitted
    assert 'svc_requests_completed_by_key{key="we\\"ird\\nkey\\\\x"} 2' in text


def test_resilience_counters_reach_metrics_and_summary(fitted, cluster_data):
    service = EncodingService(
        max_batch=100, max_pending_per_key=1, overload_policy="degrade"
    )
    service.register("a", fitted)
    service.submit(cluster_data[0], key="a")
    service.submit(cluster_data[1], key="a")  # shed
    service.flush()
    stats = service.stats()
    assert "1 shed degraded" in stats.summary()
    assert "enqode_requests_shed_degraded_total 1" in stats.to_metrics()
    # Counters that are zero stay out of the human line but are still
    # exported for scrapers (rate() needs the zero samples).
    assert "rejected" not in stats.summary()
    assert "enqode_requests_rejected_total 0" in stats.to_metrics()


def test_unregister_pulls_key_out_of_routing(fitted, cluster_data):
    service = EncodingService(max_batch=4)
    service.register("a", fitted)
    service.registry.unregister("a")
    with pytest.raises(ServiceError, match="no encoder registered"):
        service.submit(cluster_data[0], key="a")
    with pytest.raises(ServiceError):
        service.registry.unregister("a")  # unknown key is loud
