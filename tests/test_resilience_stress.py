"""Soak test: sustained concurrent traffic under injected faults.

Runs only under ``pytest -m stress`` (a separate, non-blocking CI job;
tier-1 skips it).  N submitter threads hammer M keys for
``STRESS_SECONDS`` (env, default 3) through the thread backend with
probabilistic transient faults, retries, per-request deadlines, and an
over-budget degrade policy all active at once.  Asserts the two
properties every resilience feature must jointly preserve: *ticket
conservation* (every submission resolves or was refused — nothing lost,
nothing hung) and *clean shutdown* (stop() joins within the watchdog).
"""

import os
import threading

import numpy as np
import pytest

from repro.core import EnQodeConfig, EnQodeEncoder
from repro.errors import CircuitOpenError, OverloadError, ServiceError
from repro.service import EncodingService, FaultInjector, FaultRule

STRESS_SECONDS = float(os.environ.get("STRESS_SECONDS", "3"))

pytestmark = pytest.mark.stress


@pytest.fixture(scope="module")
def fitted_pair(segment4):
    rng = np.random.default_rng(99)
    centers = rng.normal(size=(2, 16))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    encoders = []
    for seed, center in enumerate(centers):
        block = center + 0.04 * rng.normal(size=(30, 16))
        block /= np.linalg.norm(block, axis=1, keepdims=True)
        config = EnQodeConfig(
            num_qubits=4,
            num_layers=4,
            offline_restarts=2,
            offline_max_iterations=200,
            online_max_iterations=40,
            max_clusters=3,
            seed=seed,
        )
        encoder = EnQodeEncoder(segment4, config)
        encoder.fit(block)
        encoders.append(encoder)
    return encoders


def test_soak_conservation_and_clean_shutdown(fitted_pair, watchdog_extend):
    watchdog_extend(STRESS_SECONDS + 120.0)  # fit + soak + drain budget
    rng = np.random.default_rng(2024)
    samples = rng.normal(size=(64, 16))
    samples /= np.linalg.norm(samples, axis=1, keepdims=True)

    injector = FaultInjector(
        [
            FaultRule("finetune", kind="error", probability=0.05),
            FaultRule("flush", kind="error", probability=0.05),
            FaultRule("route", kind="latency", latency=0.001, probability=0.2),
            FaultRule("worker", kind="death", probability=0.01),
        ],
        seed=4321,
    )
    service = EncodingService(
        backend="thread",
        workers=3,
        max_batch=8,
        max_delay=0.01,
        max_pending_per_key=16,
        overload_policy="degrade",
        retry_attempts=3,
        retry_backoff=0.002,
        breaker_threshold=20,
        breaker_reset_timeout=0.05,
        flush_timeout=10.0,  # generous: exercises the sweep, not abandonment
        fault_injector=injector,
    )
    service.register("left", fitted_pair[0])
    service.register("right", fitted_pair[1])
    service.start()

    stop_at = [False]
    tickets_per_thread: list = []
    refused = [0] * 4
    errors: list = []

    def submitter(slot: int) -> None:
        local: list = []
        tickets_per_thread.append(local)
        i = slot
        while not stop_at[0]:
            sample = samples[i % len(samples)]
            key = "left" if i % 2 else "right"
            deadline = 0.5 if i % 7 == 0 else None
            try:
                local.append(service.submit(sample, key=key, deadline=deadline))
            except (OverloadError, CircuitOpenError):
                refused[slot] += 1
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)
                return
            i += 4

    threads = [
        threading.Thread(target=submitter, args=(slot,)) for slot in range(4)
    ]
    timer = threading.Timer(STRESS_SECONDS, lambda: stop_at.__setitem__(0, True))
    timer.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    timer.cancel()

    watchdog_extend(120.0)  # fresh budget for the drain + join phase
    service.drain(timeout=60.0)
    stats = service.stats()
    service.stop(timeout=60.0)

    assert not errors, errors
    tickets = [t for local in tickets_per_thread for t in local]
    assert len(tickets) > 0
    # Ticket conservation: every accepted submission resolved one way.
    for ticket in tickets:
        assert ticket._event.is_set(), (
            f"ticket {ticket.request.request_id} hung after drain+stop"
        )
        assert ticket.done != ticket.failed
    assert stats.requests_submitted == len(tickets) + sum(refused)
    assert stats.requests_submitted == (
        stats.requests_completed
        + stats.requests_failed
        + stats.rejected
        + stats.requests_pending
    )
    assert stats.requests_pending == 0
    assert stats.rejected == sum(refused)
    # The soak actually exercised the machinery it claims to.
    assert stats.num_flushes > 0
    assert injector.fired_count() > 0
