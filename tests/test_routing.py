"""Unit tests for SWAP-insertion routing."""

import numpy as np
import pytest

from repro.errors import TranspilerError
from repro.hardware import linear_chain
from repro.quantum import QuantumCircuit, simulate_statevector
from repro.transpile import Layout, route


def test_adjacent_gates_need_no_swaps():
    qc = QuantumCircuit(4).cx(0, 1).cx(2, 3).cx(1, 2)
    result = route(qc, linear_chain(4))
    assert result.num_swaps_inserted == 0
    assert result.final_layout == result.initial_layout


def test_distant_gate_inserts_swaps():
    qc = QuantumCircuit(4).cx(0, 3)
    result = route(qc, linear_chain(4))
    assert result.num_swaps_inserted == 2
    for instr in result.circuit:
        if instr.gate.num_qubits == 2:
            a, b = instr.qubits
            assert abs(a - b) == 1


def test_all_gates_coupled_after_routing():
    rng = np.random.default_rng(0)
    qc = QuantumCircuit(6)
    for _ in range(25):
        a, b = rng.choice(6, size=2, replace=False)
        qc.cx(int(a), int(b))
    result = route(qc, linear_chain(6))
    coupling = linear_chain(6)
    for instr in result.circuit:
        if instr.gate.num_qubits == 2:
            assert coupling.are_connected(*instr.qubits)


def test_routed_circuit_equivalent_up_to_final_layout():
    rng = np.random.default_rng(3)
    qc = QuantumCircuit(4)
    for _ in range(12):
        a, b = rng.choice(4, size=2, replace=False)
        qc.cx(int(a), int(b))
        qc.rx(float(rng.uniform(-3, 3)), int(a))
    result = route(qc, linear_chain(4))
    original = simulate_statevector(qc).data
    routed = simulate_statevector(result.circuit).data
    # Undo the final layout permutation and compare.
    n = 4
    perm = np.zeros(2**n, dtype=int)
    for idx in range(2**n):
        out = 0
        for logical in range(n):
            bit = (idx >> (n - 1 - logical)) & 1
            out |= bit << (n - 1 - result.final_layout.physical(logical))
        perm[out] = idx
    assert abs(np.vdot(routed, original[perm])) ** 2 == pytest.approx(1.0)


def test_seeded_routing_reproducible_and_varies():
    qc = QuantumCircuit(5)
    rng = np.random.default_rng(1)
    for _ in range(15):
        a, b = rng.choice(5, size=2, replace=False)
        qc.cx(int(a), int(b))
    chain = linear_chain(5)
    first = route(qc, chain, seed=10)
    second = route(qc, chain, seed=10)
    assert len(first.circuit) == len(second.circuit)
    lengths = {len(route(qc, chain, seed=s).circuit) for s in range(12)}
    assert len(lengths) > 1  # stochastic tie-breaking changes the outcome


def test_initial_layout_respected():
    qc = QuantumCircuit(2).cx(0, 1)
    layout = Layout({0: 2, 1: 0})
    result = route(qc, linear_chain(3), initial_layout=layout)
    # Physical distance 2 -> one swap needed.
    assert result.num_swaps_inserted == 1


def test_too_many_qubits_rejected():
    with pytest.raises(TranspilerError):
        route(QuantumCircuit(5).cx(0, 1), linear_chain(3))


def test_multi_qubit_gate_rejected():
    from repro.quantum.gates import Gate

    qc = QuantumCircuit(3)
    qc.append(Gate("ccx", 3, (), np.eye(8)), (0, 1, 2))
    with pytest.raises(TranspilerError):
        route(qc, linear_chain(3))
