"""Tests for the qubit-count scaling study (small width for speed)."""

import pytest

from repro.evaluation import render_scaling, run_qubit_scaling


@pytest.fixture(scope="module")
def rows():
    return run_qubit_scaling(
        qubit_counts=(4, 5), samples_per_class=52, num_eval_samples=3
    )


def test_row_per_width(rows):
    assert [row.num_qubits for row in rows] == [4, 5]


def test_enqode_cost_fixed_and_small(rows):
    for row in rows:
        assert row.enqode_two_qubit < row.baseline_two_qubit_mean
        assert row.enqode_depth < row.baseline_depth_mean


def test_baseline_cost_grows_with_width(rows):
    assert rows[1].baseline_two_qubit_mean > rows[0].baseline_two_qubit_mean


def test_fidelity_usable_at_all_widths(rows):
    for row in rows:
        assert 0.5 < row.enqode_fidelity_mean <= 1.0


def test_render(rows):
    table = render_scaling(rows)
    assert "EnQ fid" in table
    assert table.count("\n") >= len(rows) + 1
