"""Unit tests for EnQode model persistence."""

import json

import numpy as np
import pytest

from repro.core import (
    EnQodeConfig,
    EnQodeEncoder,
    encoder_from_dict,
    encoder_to_dict,
    load_encoder,
    save_encoder,
)
from repro.errors import OptimizationError


@pytest.fixture(scope="module")
def fitted(segment4):
    rng = np.random.default_rng(0)
    center = rng.normal(size=16)
    center /= np.linalg.norm(center)
    samples = center + 0.03 * rng.normal(size=(30, 16))
    samples /= np.linalg.norm(samples, axis=1, keepdims=True)
    encoder = EnQodeEncoder(
        segment4,
        EnQodeConfig(
            num_qubits=4,
            num_layers=4,
            offline_restarts=3,
            offline_max_iterations=400,
            seed=1,
        ),
    )
    encoder.fit(samples)
    return encoder, samples


def test_unfitted_encoder_not_serializable(segment4):
    with pytest.raises(OptimizationError):
        encoder_to_dict(EnQodeEncoder(segment4, EnQodeConfig(num_qubits=4)))


def test_roundtrip_preserves_models(fitted, segment4):
    encoder, _ = fitted
    restored = encoder_from_dict(encoder_to_dict(encoder), segment4)
    assert len(restored.cluster_models) == len(encoder.cluster_models)
    for a, b in zip(restored.cluster_models, encoder.cluster_models):
        assert np.allclose(a.theta, b.theta)
        assert np.allclose(a.center, b.center)
        assert a.fidelity == pytest.approx(b.fidelity)


def test_restored_encoder_encodes_identically(fitted, segment4):
    encoder, samples = fitted
    restored = encoder_from_dict(encoder_to_dict(encoder), segment4)
    original = encoder.encode(samples[3])
    reloaded = restored.encode(samples[3])
    assert np.allclose(original.theta, reloaded.theta)
    assert original.ideal_fidelity == pytest.approx(reloaded.ideal_fidelity)


def test_file_roundtrip(fitted, segment4, tmp_path):
    encoder, samples = fitted
    path = tmp_path / "model.json"
    save_encoder(encoder, path)
    restored = load_encoder(path, segment4)
    assert restored.is_fitted
    assert restored.encode(samples[0]).ideal_fidelity == pytest.approx(
        encoder.encode(samples[0]).ideal_fidelity
    )


def test_json_is_plain_and_versioned(fitted, tmp_path):
    encoder, _ = fitted
    path = tmp_path / "model.json"
    save_encoder(encoder, path)
    payload = json.loads(path.read_text())
    assert payload["format_version"] == 1
    assert "clusters" in payload and "config" in payload


def test_version_mismatch_rejected(fitted, segment4):
    encoder, _ = fitted
    payload = encoder_to_dict(encoder)
    payload["format_version"] = 99
    with pytest.raises(OptimizationError):
        encoder_from_dict(payload, segment4)


def test_schema_version_written_and_enforced(fitted, segment4):
    """Bundles carry schema_version; a mismatch names found/expected."""
    from repro.core.serialization import SCHEMA_VERSION
    from repro.errors import SerializationError

    encoder, _ = fitted
    payload = encoder_to_dict(encoder)
    assert payload["schema_version"] == SCHEMA_VERSION
    payload["schema_version"] = 99
    with pytest.raises(SerializationError) as err:
        encoder_from_dict(payload, segment4)
    assert "99" in str(err.value)
    assert str(SCHEMA_VERSION) in str(err.value)


def test_missing_version_rejected(fitted, segment4):
    from repro.errors import SerializationError

    encoder, _ = fitted
    payload = encoder_to_dict(encoder)
    del payload["schema_version"]
    del payload["format_version"]
    with pytest.raises(SerializationError, match="schema_version"):
        encoder_from_dict(payload, segment4)


def test_missing_sections_raise_serialization_error(fitted, segment4):
    """A truncated bundle fails with a named section, not a KeyError."""
    from repro.errors import SerializationError

    encoder, _ = fitted
    for key in ("config", "clusters"):
        payload = encoder_to_dict(encoder)
        del payload[key]
        with pytest.raises(SerializationError, match=key):
            encoder_from_dict(payload, segment4)


def test_non_bundle_file_rejected(segment4, tmp_path):
    from repro.errors import SerializationError

    path = tmp_path / "list.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(SerializationError):
        load_encoder(path, segment4)


def test_serialization_error_is_backward_compatible(fitted, segment4):
    """SerializationError still lands in pre-existing except clauses."""
    from repro.errors import OptimizationError as OptErr
    from repro.errors import ReproError, SerializationError

    assert issubclass(SerializationError, OptErr)
    assert issubclass(SerializationError, ReproError)


def test_dimension_mismatch_rejected(fitted, segment4):
    encoder, _ = fitted
    payload = encoder_to_dict(encoder)
    payload["clusters"][0]["center"] = [1.0, 0.0]
    with pytest.raises(OptimizationError):
        encoder_from_dict(payload, segment4)


def test_empty_clusters_rejected(fitted, segment4):
    encoder, _ = fitted
    payload = encoder_to_dict(encoder)
    payload["clusters"] = []
    with pytest.raises(OptimizationError):
        encoder_from_dict(payload, segment4)
