"""Tests for the online serving layer and the stage pipeline behind it.

Covers the PR-3 acceptance criteria: ``EncodingService`` submit-then-
flush equivalence with ``encode_batch`` (cluster assignments, fidelities
to 1e-9, identical transpiled circuits), micro-batcher size/deadline
triggers, registry routing and versioned-bundle loading, service stats,
and the shared ``EncodePipeline`` stage objects the shims execute.
"""

import numpy as np
import pytest

from repro.core import EnQodeConfig, EnQodeEncoder, nearest_center
from repro.core.pipeline import EncodePipeline, RoutePlan
from repro.errors import OptimizationError, SerializationError, ServiceError
from repro.service import (
    EncodeRequest,
    EncoderRegistry,
    EncodingService,
    MicroBatcher,
)


@pytest.fixture(scope="module")
def cluster_data():
    """Two tight clusters of unit vectors in R^16."""
    rng = np.random.default_rng(21)
    centers = rng.normal(size=(2, 16))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    blocks = []
    for center in centers:
        block = center + 0.04 * rng.normal(size=(20, 16))
        blocks.append(block / np.linalg.norm(block, axis=1, keepdims=True))
    return np.concatenate(blocks)


@pytest.fixture(scope="module")
def fitted(segment4, cluster_data):
    config = EnQodeConfig(
        num_qubits=4,
        num_layers=6,
        offline_restarts=3,
        offline_max_iterations=500,
        online_max_iterations=60,
        max_clusters=8,
        seed=9,
    )
    encoder = EnQodeEncoder(segment4, config)
    encoder.fit(cluster_data)
    return encoder


class ManualClock:
    """Injectable monotonic clock for deterministic deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


# -- the acceptance regression: service == encode_batch -------------------------------


def test_submit_then_flush_matches_encode_batch(fitted, cluster_data):
    """Streamed submissions produce exactly the batch-path results."""
    samples = cluster_data[:16]
    reference = fitted.encode_batch(samples)

    service = EncodingService(max_batch=16)
    service.register("only", fitted)
    tickets = [service.submit(x, key="only") for x in samples]
    # The 16th submission hit the size trigger: everything is served.
    assert all(ticket.done for ticket in tickets)
    for ticket, ref in zip(tickets, reference):
        response = ticket.result()
        assert response.cluster_index == ref.cluster_index
        assert abs(response.fidelity - ref.ideal_fidelity) < 1e-9
        assert list(response.circuit) == list(ref.circuit)
        assert response.batch_size == 16
        assert response.latency >= 0.0


def test_partial_batch_flush_matches_encode_batch(fitted, cluster_data):
    """An explicit flush of a partial queue equals encode_batch on it."""
    samples = cluster_data[:5]
    reference = fitted.encode_batch(samples)
    service = EncodingService(max_batch=32)
    service.register(0, fitted)
    tickets = [service.submit(x, key=0) for x in samples]
    assert not any(ticket.done for ticket in tickets)
    assert service.pending == 5
    responses = service.flush()
    assert len(responses) == 5
    for response, ref in zip(responses, reference):
        assert response.cluster_index == ref.cluster_index
        assert abs(response.fidelity - ref.ideal_fidelity) < 1e-9
        assert list(response.circuit) == list(ref.circuit)


def test_single_submission_matches_encode(fitted, cluster_data):
    """A flush of one request equals the one-off path modulo the template.

    Size-1 pipeline runs use the sequential fine-tune engine, so the
    service never diverges from ``encode`` on trickle traffic.
    """
    sample = cluster_data[3]
    reference = fitted.encode(sample)
    service = EncodingService(max_batch=32)
    service.register(0, fitted)
    response = service.submit(sample, key=0).result()
    assert response.cluster_index == reference.cluster_index
    assert abs(response.fidelity - reference.ideal_fidelity) < 1e-12
    assert list(response.circuit) == list(reference.circuit)


# -- micro-batcher triggers -----------------------------------------------------------


def test_size_trigger_flushes_at_max_batch(fitted, cluster_data):
    service = EncodingService(max_batch=4)
    service.register(0, fitted)
    tickets = [service.submit(x, key=0) for x in cluster_data[:6]]
    assert all(t.done for t in tickets[:4])  # first full window flushed
    assert not any(t.done for t in tickets[4:])  # remainder still queued
    assert service.pending == 2


def test_deadline_trigger_flushes_old_requests(fitted, cluster_data):
    clock = ManualClock()
    service = EncodingService(max_batch=100, max_delay=0.5, clock=clock)
    service.register(0, fitted)
    early = service.submit(cluster_data[0], key=0)
    clock.advance(0.1)
    assert not early.done
    clock.advance(0.6)
    # Any later submit enforces the deadline across all queues...
    late = service.submit(cluster_data[1], key=0)
    assert early.done
    # ...and the sweep happens after enqueueing, so the fresh request
    # rode along in the same flush rather than being stranded.
    assert late.done
    assert early.result().latency == pytest.approx(0.7)


def test_poll_flushes_due_queues_without_traffic(fitted, cluster_data):
    clock = ManualClock()
    service = EncodingService(max_batch=100, max_delay=1.0, clock=clock)
    service.register(0, fitted)
    ticket = service.submit(cluster_data[0], key=0)
    assert service.poll() == []  # not due yet
    clock.advance(2.0)
    responses = service.poll()
    assert len(responses) == 1
    assert ticket.done


def test_ticket_result_forces_flush(fitted, cluster_data):
    service = EncodingService(max_batch=32)
    service.register(0, fitted)
    ticket = service.submit(cluster_data[0], key=0)
    assert not ticket.done
    response = ticket.result()  # flushes the owning queue
    assert ticket.done
    assert response.request_id == ticket.request.request_id
    with pytest.raises(ServiceError):
        EncodingService(max_batch=0)


def test_microbatcher_bookkeeping():
    batcher = MicroBatcher(max_batch=2, max_delay=1.0)
    first = EncodeRequest(0, "k", np.ones(4), submitted_at=0.0)
    assert batcher.add(first) is False
    assert batcher.pending("k") == 1
    assert batcher.due_keys(0.5) == []
    assert batcher.due_keys(1.5) == ["k"]
    assert batcher.add(EncodeRequest(1, "k", np.ones(4), 0.2)) is True
    assert batcher.full_keys() == ["k"]
    drained = batcher.drain("k")
    assert [r.request_id for r in drained] == [0, 1]
    assert batcher.pending() == 0
    assert batcher.drain("k") == []
    assert batcher.oldest_age(5.0) == 0.0


# -- registry + routing ---------------------------------------------------------------


def test_registry_rejects_unfitted(segment4):
    registry = EncoderRegistry()
    with pytest.raises(ServiceError):
        registry.register(0, EnQodeEncoder(segment4, EnQodeConfig(num_qubits=4)))
    with pytest.raises(ServiceError):
        registry.register(0, "not an encoder")
    with pytest.raises(ServiceError):
        registry.get(0)
    with pytest.raises(ServiceError):
        registry.route(np.ones(16))


def test_registry_bundle_roundtrip(fitted, segment4, tmp_path):
    registry = EncoderRegistry()
    registry.register("a", fitted)
    registry.save("a", tmp_path / "a.json")
    reloaded = registry.load("b", tmp_path / "a.json", segment4)
    assert reloaded.is_fitted
    assert registry.keys() == ["a", "b"]
    np.testing.assert_allclose(
        reloaded.cluster_centers(), fitted.cluster_centers()
    )


def test_registry_load_rejects_bad_schema(fitted, segment4, tmp_path):
    import json

    from repro.core import encoder_to_dict

    payload = encoder_to_dict(fitted)
    payload["schema_version"] = 99
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(payload))
    registry = EncoderRegistry()
    with pytest.raises(SerializationError, match="99"):
        registry.load("x", path, segment4)
    assert "x" not in registry


def test_service_routes_unkeyed_submissions(fitted, segment4, cluster_data):
    """No-key submits follow the nearest-class rule per encoder."""
    # Two "classes": encoders trained on each half of the data.
    config = fitted.config
    low = EnQodeEncoder(segment4, config)
    low.fit(cluster_data[:20])
    high = EnQodeEncoder(segment4, config)
    high.fit(cluster_data[20:])
    service = EncodingService(max_batch=4)
    service.register("low", low)
    service.register("high", high)
    ticket_low = service.submit(cluster_data[2])
    ticket_high = service.submit(cluster_data[25])
    assert ticket_low.request.key == "low"
    assert ticket_high.request.key == "high"


def test_submit_validation(fitted):
    service = EncodingService()
    service.register(0, fitted)
    with pytest.raises(ServiceError):
        service.submit(np.zeros(16), key=0)  # zero vector
    with pytest.raises(ServiceError):
        service.submit(np.full(16, np.nan), key=0)  # non-finite
    with pytest.raises(ServiceError):
        service.submit(np.ones(8), key=0)  # wrong width
    with pytest.raises(ServiceError):
        service.submit(np.ones(8))  # wrong width, unkeyed (routes first)
    with pytest.raises(ServiceError):
        service.submit(np.ones(16), key="missing")  # unknown key


def test_failed_flush_fails_tickets_loudly(fitted, cluster_data):
    """A flush-time error must not silently strand drained requests.

    Simulates the hot-reload hazard: a request that no longer matches
    its encoder's amplitude width poisons the micro-batch.  The flush
    raises, every drained ticket carries the error (result() re-raises
    instead of claiming 'still queued'), and the failure is counted.
    """
    service = EncodingService(max_batch=32)
    service.register(0, fitted)
    good = service.submit(cluster_data[0], key=0)
    # A stale-width request, as a swapped-out model bundle would leave.
    stale = EncodeRequest(
        request_id=999, key=0, sample=np.ones(8), submitted_at=0.0
    )
    service.batcher.add(stale)
    with pytest.raises(ServiceError, match="flush of 2 request"):
        service.flush()
    assert good.failed and not good.done
    with pytest.raises(ServiceError, match="failed during its micro-batch"):
        good.result()
    stats = service.stats()
    assert stats.requests_failed == 2
    assert stats.requests_completed == 0
    assert stats.requests_pending == 0  # nothing stranded in the queue


def test_service_stats_accounting(fitted, cluster_data):
    service = EncodingService(max_batch=4)
    service.register(0, fitted)
    for x in cluster_data[:10]:
        service.submit(x, key=0)
    service.flush()
    stats = service.stats()
    assert stats.requests_submitted == 10
    assert stats.requests_completed == 10
    assert stats.requests_pending == 0
    assert stats.num_flushes == 3  # 4 + 4 + 2
    assert stats.mean_batch_size == pytest.approx(10 / 3)
    assert stats.p50_latency >= 0.0
    assert stats.p95_latency >= stats.p50_latency
    assert stats.evals_per_sample > 0
    assert 0.0 < stats.mean_fidelity <= 1.0
    assert stats.per_key_completed == {0: 10}
    # The template was built (or cache-hit) once per flush.
    assert stats.template_cache_hits + stats.template_cache_misses == 3
    # Bind accounting is per *row*: a batched flush of B requests counts
    # B template binds, exactly like B per-sample binds would.
    assert stats.template_binds == 10
    assert "served in 3 flushes" in stats.summary()
    assert "10 template binds" in stats.summary()


def test_template_binds_counted_per_row(fitted, cluster_data):
    """Regression: bind counters advance by batch size, not flush count."""
    pipeline = fitted.pipeline
    template = pipeline.lower.template()
    binds_before = template.num_binds
    stats_before = pipeline.stats.template_binds
    service = EncodingService(max_batch=8)
    service.register(0, fitted)
    for x in cluster_data[:8]:
        service.submit(x, key=0)  # flushes once, at max_batch
    assert template.num_binds - binds_before == 8
    assert pipeline.stats.template_binds - stats_before == 8
    assert service.stats().template_binds == 8
    # A full-transpile service never touches the template counters.
    full = EncodingService(max_batch=4, use_template=False)
    full.register(0, fitted)
    for x in cluster_data[:4]:
        full.submit(x, key=0)
    assert full.stats().template_binds == 0
    assert template.num_binds - binds_before == 8


# -- the stage pipeline ----------------------------------------------------------------


def test_pipeline_stage_objects_shared_by_shims(fitted):
    """encode/encode_batch execute the same EncodePipeline instance."""
    pipeline = fitted.pipeline
    assert isinstance(pipeline, EncodePipeline)
    assert fitted.pipeline is pipeline  # cached
    runs_before = pipeline.stats.runs
    fitted.encode(np.ones(16))
    fitted.encode_batch(np.ones((2, 16)))
    assert pipeline.stats.runs == runs_before + 2
    assert list(pipeline.stats.batch_sizes)[-2:] == [1, 2]


def test_pipeline_rebuilt_after_reload(fitted, segment4):
    from repro.core import encoder_from_dict, encoder_to_dict

    restored = encoder_from_dict(encoder_to_dict(fitted), segment4)
    first = restored.pipeline
    assert first.transfer is restored._transfer
    # Replacing the models (as a service-side reload does) rebuilds it.
    restored._transfer = fitted._transfer
    assert restored.pipeline is not first
    assert restored.pipeline.transfer is fitted._transfer


def test_pipeline_before_fit_rejected(segment4):
    encoder = EnQodeEncoder(segment4, EnQodeConfig(num_qubits=4))
    with pytest.raises(OptimizationError):
        encoder.pipeline


def test_route_stage_matches_scalar_assignment(fitted, cluster_data):
    plan = fitted.pipeline.route.run(cluster_data[:6])
    assert isinstance(plan, RoutePlan)
    assert plan.batch_size == 6
    for b in range(6):
        index, distance = nearest_center(
            cluster_data[b], fitted._transfer.centers
        )
        assert plan.indices[b] == index
        assert plan.distances[b] == pytest.approx(distance)
        np.testing.assert_array_equal(
            plan.theta0[b], fitted._transfer.cluster_thetas[index]
        )


def test_bind_and_lower_stages_compose(fitted, cluster_data):
    """bind → lower (full) equals the template-bound lowering."""
    pipeline = fitted.pipeline
    encoded = fitted.encode_batch(cluster_data[:1])[0]
    logical = pipeline.bind.run(encoded.theta)
    lowered = pipeline.lower.run(logical)
    template_bound = pipeline.lower.template().bind(encoded.theta)
    assert list(lowered.circuit) == list(template_bound.circuit)
    assert list(encoded.circuit) == list(lowered.circuit)


def test_pipeline_reports_optimizer_evaluations(fitted, cluster_data):
    batch = fitted.encode_batch(cluster_data[:3])
    assert all(sample.optimizer_evaluations > 0 for sample in batch)
    one = fitted.encode(cluster_data[0])
    assert one.optimizer_evaluations > 0


def test_config_validation_hardened():
    with pytest.raises(OptimizationError):
        EnQodeConfig(max_clusters=0)
    with pytest.raises(OptimizationError):
        EnQodeConfig(target_fidelity=0.0)
    with pytest.raises(OptimizationError):
        EnQodeConfig(target_fidelity=1.5)
    with pytest.raises(OptimizationError):
        EnQodeConfig(gtol=0.0)
    with pytest.raises(OptimizationError):
        EnQodeConfig(ftol=-1e-9)
    with pytest.raises(OptimizationError):
        EnQodeConfig(optimization_level=2)
    assert EnQodeConfig(optimization_level=0).optimization_level == 0
