"""Unit tests for the simulator front-ends (incl. fused noisy path)."""

import numpy as np
import pytest

from repro.quantum import (
    DensityMatrix,
    DensityMatrixSimulator,
    NoiseModel,
    QuantumCircuit,
    StatevectorSimulator,
    depolarizing_channel,
    state_fidelity,
    thermal_relaxation_channel,
)


def _noise_model():
    model = NoiseModel()
    model.add_quantum_error(depolarizing_channel(0.05, 2), "ecr", (0, 1))
    model.add_quantum_error(
        thermal_relaxation_channel(2e-4, 1.2e-4, 6.6e-7),
        "ecr",
        (0, 1),
        targets=(0,),
    )
    model.add_quantum_error(
        thermal_relaxation_channel(1e-4, 0.8e-4, 6.6e-7),
        "ecr",
        (0, 1),
        targets=(1,),
    )
    model.add_all_qubit_quantum_error(depolarizing_channel(0.01, 1), "sx")
    return model


def _reference_run(circuit, model):
    state = DensityMatrix.zero_state(circuit.num_qubits)
    for instr in circuit:
        state.apply_unitary(instr.gate.matrix, instr.qubits)
        for channel, targets in model.rules_for(instr):
            state.apply_channel(channel, targets)
    return state


def test_statevector_simulator_bell():
    psi = StatevectorSimulator().run(QuantumCircuit(2).h(0).cx(0, 1))
    assert np.allclose(psi.data, np.array([1, 0, 0, 1]) / np.sqrt(2))


def test_noiseless_density_sim_matches_statevector():
    qc = QuantumCircuit(2).h(0).cy(0, 1).rz(0.4, 1)
    rho = DensityMatrixSimulator().run(qc)
    psi = StatevectorSimulator().run(qc)
    assert state_fidelity(rho, psi) == pytest.approx(1.0)


def test_fused_noisy_path_matches_sequential_reference():
    model = _noise_model()
    qc = QuantumCircuit(3)
    qc.sx(0).ecr(0, 1).rz(0.3, 1).sx(2).ecr(0, 1).sx(1).rz(-0.2, 0)
    fast = DensityMatrixSimulator(model).run(qc)
    reference = _reference_run(qc, model)
    assert np.allclose(fast.data, reference.data, atol=1e-12)


def test_noise_reduces_fidelity_monotonically():
    target = QuantumCircuit(2).h(0).cx(0, 1)
    psi = StatevectorSimulator().run(target)
    fidelities = []
    for p in (0.0, 0.05, 0.2):
        model = NoiseModel()
        if p > 0:
            model.add_all_qubit_quantum_error(depolarizing_channel(p, 2), "cx")
        rho = DensityMatrixSimulator(model).run(target)
        fidelities.append(state_fidelity(rho, psi))
    assert fidelities[0] == pytest.approx(1.0)
    assert fidelities[0] > fidelities[1] > fidelities[2]


def test_rz_stays_noiseless():
    model = NoiseModel()
    model.add_all_qubit_quantum_error(depolarizing_channel(0.5, 1), "sx")
    qc = QuantumCircuit(1).rz(1.3, 0)
    rho = DensityMatrixSimulator(model).run(qc)
    assert rho.purity() == pytest.approx(1.0)


def test_initial_state_is_not_mutated():
    initial = DensityMatrix.zero_state(1)
    DensityMatrixSimulator().run(QuantumCircuit(1).x(0), initial_state=initial)
    assert initial.data[0, 0] == pytest.approx(1.0)


def test_initial_state_qubit_mismatch():
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        DensityMatrixSimulator().run(
            QuantumCircuit(2).h(0), initial_state=DensityMatrix.zero_state(1)
        )


def test_fused_cache_reused_across_runs():
    model = _noise_model()
    sim = DensityMatrixSimulator(model)
    qc = QuantumCircuit(2).ecr(0, 1).ecr(0, 1)
    sim.run(qc)
    cache_size = len(sim._fused_cache)
    sim.run(qc)
    assert len(sim._fused_cache) == cache_size == 1


def test_trace_preserved_under_noise():
    model = _noise_model()
    qc = QuantumCircuit(3).sx(0).ecr(0, 1).sx(1).sx(2).ecr(0, 1)
    rho = DensityMatrixSimulator(model).run(qc)
    assert rho.trace() == pytest.approx(1.0)
