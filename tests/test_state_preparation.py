"""Unit tests for the Baseline end-to-end state-preparation API."""

import numpy as np
import pytest

from repro.baseline import BaselineStatePreparation
from repro.quantum import random_real_amplitudes, simulate_statevector, state_fidelity


@pytest.fixture(scope="module")
def prep(request):
    from repro.hardware import brisbane_linear_segment

    return BaselineStatePreparation(brisbane_linear_segment(4))


def test_prepared_state_exact(prep):
    target = random_real_amplitudes(16, seed=0)
    prepared = prep.prepare(target)
    psi = simulate_statevector(prepared.circuit)
    assert state_fidelity(psi, prepared.physical_target()) == pytest.approx(1.0)


def test_compile_time_recorded(prep):
    prepared = prep.prepare(random_real_amplitudes(16, seed=1))
    assert prepared.compile_time > 0.0


def test_native_output(prep):
    prepared = prep.prepare(random_real_amplitudes(16, seed=2))
    for instr in prepared.circuit:
        assert prep.backend.native_gates.is_native(instr.name)


def test_same_sample_compiles_identically(prep):
    target = random_real_amplitudes(16, seed=3)
    a = prep.prepare(target)
    b = prep.prepare(target)
    assert a.metrics().as_row() == b.metrics().as_row()


def test_different_samples_vary(segment8):
    prep8 = BaselineStatePreparation(segment8)
    rng = np.random.default_rng(0)
    depths = set()
    for _ in range(5):
        vec = rng.normal(size=256) * np.exp(-np.arange(256) / 40)
        depths.add(prep8.prepare(vec).metrics().depth)
    assert len(depths) > 1


def test_fixed_routing_seed_removes_variability(segment8):
    prep8 = BaselineStatePreparation(segment8, routing_seed=123)
    rng = np.random.default_rng(0)
    depths = set()
    for _ in range(3):
        vec = rng.normal(size=256) * np.exp(-np.arange(256) / 40)
        depths.add(prep8.prepare(vec).metrics().depth)
    # Same routing decisions + same multiplexor skeleton -> same depth.
    assert len(depths) == 1


def test_prepare_batch(prep):
    samples = np.stack([random_real_amplitudes(16, seed=s) for s in (5, 6)])
    prepared = prep.prepare_batch(samples)
    assert len(prepared) == 2
    for p in prepared:
        psi = simulate_statevector(p.circuit)
        assert state_fidelity(psi, p.physical_target()) == pytest.approx(1.0)


def test_logical_circuit_retained(prep):
    prepared = prep.prepare(random_real_amplitudes(16, seed=7))
    assert prepared.logical_circuit.num_qubits == 4
    assert set(prepared.logical_circuit.count_ops()) <= {"ry", "rz", "cx"}
