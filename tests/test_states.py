"""Unit tests for state metrics (Jozsa fidelity, purity, trace distance)."""

import numpy as np
import pytest

from repro.quantum import (
    DensityMatrix,
    QuantumCircuit,
    Statevector,
    purity,
    random_statevector,
    state_fidelity,
    trace_distance,
)


def test_fidelity_identical_pure_states():
    psi = random_statevector(3, seed=0)
    assert state_fidelity(psi, psi) == pytest.approx(1.0)


def test_fidelity_orthogonal_pure_states():
    a = np.array([1.0, 0.0])
    b = np.array([0.0, 1.0])
    assert state_fidelity(a, b) == pytest.approx(0.0)


def test_fidelity_pure_vs_mixed():
    psi = Statevector.zero_state(1)
    maximally_mixed = DensityMatrix(np.eye(2) / 2)
    assert state_fidelity(psi, maximally_mixed) == pytest.approx(0.5)


def test_fidelity_mixed_vs_mixed_jozsa():
    rho = DensityMatrix(np.diag([0.7, 0.3]))
    sigma = DensityMatrix(np.diag([0.4, 0.6]))
    expected = (np.sqrt(0.7 * 0.4) + np.sqrt(0.3 * 0.6)) ** 2
    assert state_fidelity(rho, sigma) == pytest.approx(expected)


def test_fidelity_is_symmetric(rng):
    rho = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
    rho = rho @ rho.conj().T
    rho /= np.trace(rho)
    sigma = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
    sigma = sigma @ sigma.conj().T
    sigma /= np.trace(sigma)
    assert state_fidelity(rho, sigma) == pytest.approx(
        state_fidelity(sigma, rho), rel=1e-8
    )


def test_fidelity_bounds(rng):
    for _ in range(10):
        a = random_statevector(2, rng)
        sigma = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        sigma = sigma @ sigma.conj().T
        sigma /= np.trace(sigma)
        f = state_fidelity(a, sigma)
        assert 0.0 <= f <= 1.0


def test_fidelity_global_phase_invariant():
    psi = random_statevector(2, seed=1).data
    assert state_fidelity(psi, np.exp(0.73j) * psi) == pytest.approx(1.0)


def test_fidelity_accepts_raw_arrays():
    bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
    rho = np.outer(bell, bell)
    assert state_fidelity(bell, rho) == pytest.approx(1.0)


def test_fidelity_rejects_bad_shape():
    with pytest.raises(ValueError):
        state_fidelity(np.ones((2, 3)), np.ones(4))


def test_purity():
    assert purity(Statevector.zero_state(2)) == pytest.approx(1.0)
    assert purity(DensityMatrix(np.eye(4) / 4)) == pytest.approx(0.25)


def test_trace_distance_extremes():
    a = np.array([1.0, 0.0])
    b = np.array([0.0, 1.0])
    assert trace_distance(a, b) == pytest.approx(1.0)
    assert trace_distance(a, a) == pytest.approx(0.0)


def test_trace_distance_fidelity_inequality(rng):
    # 1 - sqrt(F) <= D <= sqrt(1 - F) for pure states.
    for _ in range(10):
        a = random_statevector(2, rng)
        b = random_statevector(2, rng)
        f = state_fidelity(a, b)
        d = trace_distance(a, b)
        assert 1 - np.sqrt(f) <= d + 1e-9
        assert d <= np.sqrt(1 - f) + 1e-9


def test_fidelity_of_evolved_bell_pair():
    qc = QuantumCircuit(2).h(0).cx(0, 1)
    rho = DensityMatrix.zero_state(2).evolve(qc)
    bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
    assert state_fidelity(rho, bell) == pytest.approx(1.0)
