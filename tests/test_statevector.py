"""Unit tests for the statevector simulator and contraction kernel."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.quantum import QuantumCircuit, Statevector, simulate_statevector
from repro.quantum.statevector import contract_op


def test_zero_state():
    psi = Statevector.zero_state(3)
    assert psi.data[0] == 1.0
    assert np.allclose(psi.data[1:], 0.0)


def test_non_power_of_two_rejected():
    with pytest.raises(SimulationError):
        Statevector(np.ones(3) / np.sqrt(3))


def test_unnormalized_rejected():
    with pytest.raises(SimulationError):
        Statevector(np.array([1.0, 1.0]))


def test_from_amplitudes_normalizes():
    psi = Statevector.from_amplitudes([3.0, 4.0])
    assert np.allclose(psi.data, [0.6, 0.8])


def test_from_amplitudes_zero_vector_rejected():
    with pytest.raises(SimulationError):
        Statevector.from_amplitudes([0.0, 0.0])


def test_bell_state():
    psi = simulate_statevector(QuantumCircuit(2).h(0).cx(0, 1))
    assert np.allclose(psi.data, np.array([1, 0, 0, 1]) / np.sqrt(2))


def test_qubit0_is_most_significant():
    # X on qubit 0 of 2 qubits -> |10> = index 2.
    psi = simulate_statevector(QuantumCircuit(2).x(0))
    assert psi.data[2] == pytest.approx(1.0)


def test_evolution_preserves_norm():
    qc = QuantumCircuit(4)
    rng = np.random.default_rng(0)
    for _ in range(30):
        qc.rx(float(rng.uniform(-3, 3)), int(rng.integers(4)))
        a = int(rng.integers(4))
        qc.cx(a, (a + 1) % 4)
    psi = simulate_statevector(qc)
    assert np.linalg.norm(psi.data) == pytest.approx(1.0)


def test_qubit_count_mismatch():
    with pytest.raises(SimulationError):
        Statevector.zero_state(2).evolve(QuantumCircuit(3).h(0))


def test_probabilities_sum_to_one():
    psi = simulate_statevector(QuantumCircuit(3).h(0).h(1).h(2))
    assert psi.probabilities().sum() == pytest.approx(1.0)
    assert np.allclose(psi.probabilities(), 1 / 8)


def test_fidelity_of_orthogonal_states():
    a = Statevector.zero_state(1)
    b = Statevector(np.array([0.0, 1.0]), validate=False)
    assert a.fidelity(b) == pytest.approx(0.0)
    assert a.fidelity(a) == pytest.approx(1.0)


def test_expectation_z():
    z = np.diag([1.0, -1.0])
    assert Statevector.zero_state(1).expectation(z) == pytest.approx(1.0)


def test_density_matrix_of_pure_state():
    psi = simulate_statevector(QuantumCircuit(2).h(0))
    rho = psi.density_matrix()
    assert np.trace(rho) == pytest.approx(1.0)
    assert np.allclose(rho, rho.conj().T)


def test_contract_op_matches_tensordot_reference(rng):
    for _ in range(15):
        m = int(rng.integers(3, 8))
        k = int(rng.integers(1, min(4, m) + 1))
        axes = list(rng.choice(m, size=k, replace=False))
        op = rng.normal(size=(2**k, 2**k)) + 1j * rng.normal(size=(2**k, 2**k))
        tensor = rng.normal(size=(2,) * m) + 1j * rng.normal(size=(2,) * m)
        reference = np.tensordot(
            op.reshape((2,) * 2 * k), tensor, axes=(range(k, 2 * k), axes)
        )
        reference = np.moveaxis(reference, range(k), axes)
        assert np.allclose(contract_op(tensor, op, axes), reference)


def test_contract_op_diagonal_fast_path(rng):
    tensor = rng.normal(size=(2,) * 6) + 0j
    diag = np.diag(np.exp(1j * rng.normal(size=4)))
    got = contract_op(tensor, diag, [1, 4])
    reference = np.tensordot(
        diag.reshape(2, 2, 2, 2), tensor, axes=((2, 3), (1, 4))
    )
    reference = np.moveaxis(reference, (0, 1), (1, 4))
    assert np.allclose(got, reference)


def test_apply_gate_order_sensitivity():
    # CX(0,1) vs CX(1,0) differ; the qubit tuple order must be honored.
    from repro.quantum.gates import gate

    psi1 = Statevector.zero_state(2).apply_gate(gate("x").matrix, (0,))
    psi1.apply_gate(gate("cx").matrix, (0, 1))
    assert psi1.data[3] == pytest.approx(1.0)  # |11>

    psi2 = Statevector.zero_state(2).apply_gate(gate("x").matrix, (0,))
    psi2.apply_gate(gate("cx").matrix, (1, 0))
    assert psi2.data[2] == pytest.approx(1.0)  # control=qubit1 is 0: no-op
