"""Unit tests for the symbolic phase-state engine — the paper's Eq. 6."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import EnQodeAnsatz, SymbolicState, build_symbolic
from repro.errors import OptimizationError
from repro.quantum import simulate_statevector


@pytest.mark.parametrize("entangler", ["cy", "cx", "cz", "cry"])
@pytest.mark.parametrize("n,layers", [(2, 1), (3, 2), (4, 3), (5, 5)])
def test_symbolic_matches_dense_simulation(entangler, n, layers, rng):
    ansatz = EnQodeAnsatz(n, layers, entangler)
    symbolic = SymbolicState.from_ansatz(ansatz)
    theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
    dense = simulate_statevector(ansatz.circuit(theta)).data
    assert np.allclose(symbolic.embedded_amplitudes(theta, ansatz), dense)


def test_symbolic_matches_dense_at_paper_scale(rng):
    ansatz = EnQodeAnsatz(8, 8)
    symbolic = SymbolicState.from_ansatz(ansatz)
    theta = rng.uniform(-np.pi, np.pi, 64)
    dense = simulate_statevector(ansatz.circuit(theta)).data
    assert np.max(
        np.abs(symbolic.embedded_amplitudes(theta, ansatz) - dense)
    ) < 1e-12


@given(st.integers(0, 2**32 - 1))
def test_preclosing_amplitudes_are_flat(seed):
    ansatz = EnQodeAnsatz(4, 3)
    symbolic = build_symbolic(ansatz)
    theta = np.random.default_rng(seed).uniform(-np.pi, np.pi, 12)
    amplitudes = symbolic.amplitudes(theta)
    # Eq. 6: every amplitude has magnitude exactly 2^(-n/2).
    assert np.allclose(np.abs(amplitudes), 0.25)


def test_phase_matrix_entries_in_eq6_alphabet():
    for entangler in ("cy", "cx", "cz"):
        symbolic = build_symbolic(EnQodeAnsatz(5, 4, entangler))
        assert set(np.unique(symbolic.phase_matrix)) <= {-1, 0, 1}
        assert set(np.unique(symbolic.k_pow)) <= {0, 1, 2, 3}


def test_phase_matrix_rows_balanced():
    # Each Rz contributes +1 on half the basis states and -1 on the other.
    symbolic = build_symbolic(EnQodeAnsatz(4, 2))
    sums = symbolic.phase_matrix.astype(int).sum(axis=0)
    assert np.all(sums == 0)


def test_embedded_state_normalized(rng):
    ansatz = EnQodeAnsatz(4, 4)
    symbolic = build_symbolic(ansatz)
    theta = rng.uniform(-np.pi, np.pi, 16)
    embedded = symbolic.embedded_amplitudes(theta, ansatz)
    assert np.linalg.norm(embedded) == pytest.approx(1.0)


def test_theta_size_validated():
    symbolic = build_symbolic(EnQodeAnsatz(3, 2))
    with pytest.raises(OptimizationError):
        symbolic.amplitudes(np.zeros(5))


def test_orientation_alternation_changes_state(rng):
    theta = rng.uniform(-np.pi, np.pi, 32)
    with_alt = EnQodeAnsatz(4, 8, alternate_orientation=True)
    without = EnQodeAnsatz(4, 8, alternate_orientation=False)
    a = build_symbolic(with_alt).embedded_amplitudes(theta, with_alt)
    b = build_symbolic(without).embedded_amplitudes(theta, without)
    assert not np.allclose(np.abs(np.vdot(a, b)) ** 2, 1.0)


def test_basis_state_reachable_with_alternating_cy():
    """|10...0> requires the CY phases to telescope (the reproduction's
    load-bearing detail; see ansatz module docstring)."""
    from repro.core import FidelityObjective, LBFGSOptimizer

    ansatz = EnQodeAnsatz(4, 4)
    symbolic = build_symbolic(ansatz)
    e0 = np.zeros(16)
    e0[0] = 1.0
    objective = FidelityObjective(symbolic, ansatz, e0)
    result = LBFGSOptimizer(num_restarts=8, seed=0).optimize(objective)
    assert result.fidelity > 0.99


def test_even_layer_count_required_for_telescoping():
    """Odd layer counts leave an uncancelled CY-phase residue: |0...01>
    class targets become unreachable (regression test for the even-L
    rule documented in the ansatz docstring)."""
    from repro.core import FidelityObjective, LBFGSOptimizer

    e0 = np.zeros(16)
    e0[0] = 1.0

    def best(layers):
        ansatz = EnQodeAnsatz(4, layers)
        objective = FidelityObjective(build_symbolic(ansatz), ansatz, e0)
        return LBFGSOptimizer(num_restarts=6, seed=0).optimize(
            objective
        ).fidelity

    assert best(4) > 0.99
    assert best(5) < 0.9  # odd L: phase residue blocks exact reachability
