"""Unit tests for the synthetic image-dataset generators."""

import numpy as np
import pytest

from repro.data import synthetic_cifar10, synthetic_fashion_mnist, synthetic_mnist
from repro.errors import DataError


@pytest.mark.parametrize(
    "generator, pixels",
    [
        (synthetic_mnist, 28 * 28),
        (synthetic_fashion_mnist, 28 * 28),
        (synthetic_cifar10, 32 * 32 * 3),
    ],
)
def test_shapes_and_range(generator, pixels):
    images, labels = generator(classes=[0, 1], samples_per_class=5, seed=0)
    assert images.shape == (10, pixels)
    assert labels.shape == (10,)
    assert images.min() >= 0.0 and images.max() <= 1.0


@pytest.mark.parametrize(
    "generator",
    [synthetic_mnist, synthetic_fashion_mnist, synthetic_cifar10],
)
def test_deterministic_by_seed(generator):
    a, _ = generator(classes=[1], samples_per_class=3, seed=5)
    b, _ = generator(classes=[1], samples_per_class=3, seed=5)
    c, _ = generator(classes=[1], samples_per_class=3, seed=6)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


@pytest.mark.parametrize(
    "generator",
    [synthetic_mnist, synthetic_fashion_mnist, synthetic_cifar10],
)
def test_eight_bit_quantization(generator):
    images, _ = generator(classes=[0], samples_per_class=2, seed=0)
    assert np.allclose(images * 255.0, np.round(images * 255.0), atol=1e-9)


@pytest.mark.parametrize(
    "generator",
    [synthetic_mnist, synthetic_fashion_mnist, synthetic_cifar10],
)
def test_within_class_tighter_than_between(generator):
    images, labels = generator(classes=[0, 1], samples_per_class=15, seed=0)
    a = images[labels == 0]
    b = images[labels == 1]

    def mean_distance(x, y):
        return np.mean(
            [np.linalg.norm(x[i] - y[j]) for i in range(5) for j in range(5)]
        )

    within = mean_distance(a, a[5:])
    between = mean_distance(a, b)
    assert within < between


def test_unknown_class_rejected():
    with pytest.raises(DataError):
        synthetic_mnist(classes=[42], samples_per_class=1)
    with pytest.raises(DataError):
        synthetic_fashion_mnist(classes=[-3], samples_per_class=1)
    with pytest.raises(DataError):
        synthetic_cifar10(classes=[11], samples_per_class=1)


def test_all_ten_mnist_digits_render():
    images, labels = synthetic_mnist(samples_per_class=1, seed=0)
    assert len(np.unique(labels)) == 10
    assert np.all(images.max(axis=1) > 0.3)  # every digit leaves ink


def test_all_ten_garments_render():
    images, labels = synthetic_fashion_mnist(samples_per_class=1, seed=0)
    assert len(np.unique(labels)) == 10
    assert np.all(images.max(axis=1) > 0.3)
