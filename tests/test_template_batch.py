"""Tests for batched template binding (``ParametricTemplate.bind_batch``)
and the batched ZYZ resynthesis behind it.

The contract under test is strict: a batched bind must be
**instruction-for-instruction identical** to a Python loop of per-sample
``bind`` calls — same gate names, same qubit tuples, and the *same
floating-point bits* in every Rz angle.  The sweeps deliberately include
angles within 1e-9 of the ±pi Euler branch cut, where a one-ulp
difference between the scalar and vectorized numerics would flip an
emitted Rz sign or a 0/1/2-SX case decision.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.ansatz import EnQodeAnsatz
from repro.errors import TranspilerError
from repro.quantum import gate, random_unitary
from repro.transpile.euler import (
    synthesize_1q,
    synthesize_1q_batch,
    synthesize_1q_program_batch,
)
from repro.transpile.template import ParametricTemplate, transpile_template


def assert_identical_results(sequential, batched):
    """Bit-exact instruction equality plus layout/SWAP bookkeeping."""
    assert len(sequential) == len(batched)
    for seq, bat in zip(sequential, batched):
        seq_instr = list(seq.circuit)
        bat_instr = list(bat.circuit)
        assert len(seq_instr) == len(bat_instr)
        for a, b in zip(seq_instr, bat_instr):
            assert a.gate.name == b.gate.name
            assert a.qubits == b.qubits
            # Tuple equality on floats is exact — no allclose fuzz.
            assert a.gate.params == b.gate.params
        assert seq.initial_layout == bat.initial_layout
        assert seq.final_layout == bat.final_layout
        assert seq.num_swaps_inserted == bat.num_swaps_inserted


def branch_cut_thetas(num_parameters: int, rng: np.random.Generator):
    """Random batches salted with ±pi-adjacent and degenerate angles."""
    thetas = rng.uniform(-4.0 * np.pi, 4.0 * np.pi, (16, num_parameters))
    cut_values = np.array(
        [
            math.pi,
            -math.pi,
            math.pi - 1e-9,
            math.pi + 1e-9,
            -math.pi + 1e-9,
            -math.pi - 1e-9,
            math.pi - 1e-10,
            -math.pi + 1e-10,
            math.pi / 2.0,
            math.pi / 2.0 + 1e-10,
            0.0,
            1e-10,
            -1e-10,
            2.0 * math.pi,
            -2.0 * math.pi,
            3.0 * math.pi - 1e-9,
        ]
    )
    for row in range(8):
        picks = rng.integers(0, cut_values.size, num_parameters)
        thetas[row] = cut_values[picks]
    # Whole-row degenerate assignments: all-zero (identity runs, which
    # must be *dropped* identically) and all-pi.
    thetas[8] = 0.0
    thetas[9] = math.pi
    thetas[10] = -math.pi
    return thetas


@pytest.mark.parametrize("level", [0, 1])
def test_bind_batch_identical_to_bind_loop(segment4, rng, level):
    ansatz = EnQodeAnsatz(4, 4)
    template = ParametricTemplate(ansatz, segment4, level)
    thetas = branch_cut_thetas(ansatz.num_parameters, rng)
    sequential = [template.bind(theta) for theta in thetas]
    batched = template.bind_batch(thetas)
    assert_identical_results(sequential, batched)


@pytest.mark.parametrize("level", [0, 1])
def test_bind_batch_property_sweep(segment4, level):
    """Many independent random batches, fresh RNG streams per seed."""
    ansatz = EnQodeAnsatz(4, 3)
    template = ParametricTemplate(ansatz, segment4, level)
    for seed in range(10):
        sweep_rng = np.random.default_rng(seed)
        thetas = branch_cut_thetas(ansatz.num_parameters, sweep_rng)
        sequential = [template.bind(theta) for theta in thetas]
        batched = template.bind_batch(thetas)
        assert_identical_results(sequential, batched)


def test_bind_batch_single_row_matches_bind(segment4, rng):
    ansatz = EnQodeAnsatz(4, 4)
    template = transpile_template(ansatz, segment4, 1)
    theta = rng.uniform(-np.pi, np.pi, ansatz.num_parameters)
    assert_identical_results(
        [template.bind(theta)], template.bind_batch(theta[None, :])
    )


def test_bind_batch_counts_each_row(segment4, rng):
    """num_binds advances by B per bind_batch — today's per-row semantics."""
    ansatz = EnQodeAnsatz(4, 4)
    template = ParametricTemplate(ansatz, segment4, 1)
    assert template.num_binds == 0  # the build-time verification resets it
    thetas = rng.uniform(-np.pi, np.pi, (5, ansatz.num_parameters))
    template.bind_batch(thetas)
    assert template.num_binds == 5
    template.bind(thetas[0])
    assert template.num_binds == 6
    template.bind_batch(thetas[:2])
    assert template.num_binds == 8


def test_bind_batch_validates_shape(segment4):
    template = transpile_template(EnQodeAnsatz(4, 4), segment4, 1)
    with pytest.raises(TranspilerError):
        template.bind_batch(np.zeros((3, 5)))
    with pytest.raises(TranspilerError):
        template.bind_batch(np.zeros((2, 2, 2)))


def test_bind_batch_empty_batch(segment4):
    template = transpile_template(EnQodeAnsatz(4, 4), segment4, 1)
    before = template.num_binds
    assert template.bind_batch(np.zeros((0, 16))) == []
    assert template.num_binds == before


def test_bind_batch_results_are_independent(segment4, rng):
    """Each row gets its own circuit and layout copies."""
    ansatz = EnQodeAnsatz(4, 4)
    template = transpile_template(ansatz, segment4, 1)
    thetas = rng.uniform(-np.pi, np.pi, (3, ansatz.num_parameters))
    results = template.bind_batch(thetas)
    assert len({id(r.circuit) for r in results}) == 3
    assert len({id(r.initial_layout) for r in results}) == 3
    results[0].circuit._instructions.append("sentinel")
    assert results[1].circuit._instructions[-1] != "sentinel"


# -- batched ZYZ synthesis ------------------------------------------------------------


def _unitary_zoo(rng: np.random.Generator) -> list[np.ndarray]:
    mats = [random_unitary(1, seed=int(s)) for s in rng.integers(0, 10_000, 40)]
    mats += [
        np.eye(2, dtype=complex),
        np.exp(0.37j) * np.eye(2),
        gate("x").matrix,
        gate("sx").matrix,
        gate("rz", 0.8).matrix,
        gate("h").matrix,
    ]
    for eps in (0.0, 1e-10, -1e-10, 1e-9, 2e-9, -2e-9):
        mats.append(gate("ry", math.pi + eps).matrix)
        mats.append(gate("ry", math.pi / 2.0 + eps).matrix)
        mats.append(gate("ry", eps).matrix)
        mats.append(
            gate("rz", math.pi + eps).matrix
            @ gate("sx").matrix
            @ gate("rz", -math.pi + eps).matrix
        )
    return mats


def test_synthesize_1q_batch_matches_scalar(rng):
    mats = _unitary_zoo(rng)
    batch = synthesize_1q_batch(np.stack(mats))
    for ops, matrix in zip(batch, mats):
        assert ops == synthesize_1q(matrix)  # exact, float bits included


def test_synthesize_1q_batch_drop_identity(rng):
    mats = _unitary_zoo(rng)
    batch = synthesize_1q_batch(np.stack(mats), drop_identity=True)
    for ops, matrix in zip(batch, mats):
        pivot = matrix[0, 0]
        is_identity = (
            abs(matrix[0, 1]) <= 1e-12
            and abs(matrix[1, 0]) <= 1e-12
            and abs(matrix[1, 1] - pivot) <= 1e-12 + 1e-5 * abs(pivot)
        )
        if is_identity:
            assert ops is None
        else:
            assert ops == synthesize_1q(matrix)


def test_synthesize_1q_program_batch_encoding(rng):
    """The compact encoding expands to exactly the op-list form."""
    mats = _unitary_zoo(rng)
    program = synthesize_1q_program_batch(np.stack(mats))
    for entry, matrix in zip(program, mats):
        ops = synthesize_1q(matrix)
        if type(entry) is tuple:
            expanded = []
            w_lam, w_mid, w_phi = entry
            if w_lam == w_lam:
                expanded.append(("rz", (w_lam,)))
            expanded.append(("sx", ()))
            if w_mid == w_mid:
                expanded.append(("rz", (w_mid,)))
            expanded.append(("sx", ()))
            if w_phi == w_phi:
                expanded.append(("rz", (w_phi,)))
            assert expanded == ops
        else:
            assert entry == ops


def test_synthesize_1q_batch_rejects_bad_input():
    with pytest.raises(TranspilerError):
        synthesize_1q_batch(np.zeros((3, 3)))
    with pytest.raises(TranspilerError):
        synthesize_1q_batch(np.zeros((2, 2, 2)))  # singular rows
    assert synthesize_1q_batch(np.zeros((0, 2, 2))) == []
