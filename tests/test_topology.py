"""Unit tests for coupling maps and the heavy-hex lattice."""

import pytest

from repro.errors import BackendError
from repro.hardware import CouplingMap, heavy_hex_127, linear_chain


def test_heavy_hex_shape():
    hh = heavy_hex_127()
    assert hh.num_qubits == 127
    assert len(hh.edges) == 144  # the real Eagle edge count
    assert hh.is_connected()


def test_heavy_hex_degree_bound():
    hh = heavy_hex_127()
    degrees = dict(hh.graph.degree)
    assert max(degrees.values()) == 3  # heavy-hex property
    assert min(degrees.values()) >= 1


def test_heavy_hex_known_bridges():
    hh = heavy_hex_127()
    # Spot-check documented ibm_brisbane bridge connections.
    assert hh.are_connected(0, 14) and hh.are_connected(14, 18)
    assert hh.are_connected(4, 15) and hh.are_connected(15, 22)
    assert hh.are_connected(96, 109) and hh.are_connected(109, 114)


def test_linear_chain():
    chain = linear_chain(5)
    assert chain.edges == [(0, 1), (1, 2), (2, 3), (3, 4)]
    assert chain.distance(0, 4) == 4
    assert chain.shortest_path(0, 3) == [0, 1, 2, 3]


def test_linear_section_is_a_path():
    hh = heavy_hex_127()
    for length in (2, 8, 16):
        section = hh.linear_section(length)
        assert len(section) == length
        assert len(set(section)) == length
        for a, b in zip(section[:-1], section[1:]):
            assert hh.are_connected(a, b)


def test_linear_section_bad_length():
    with pytest.raises(BackendError):
        linear_chain(4).linear_section(0)
    with pytest.raises(BackendError):
        linear_chain(4).linear_section(5)


def test_subgraph_relabels():
    chain = linear_chain(6)
    sub = chain.subgraph([2, 3, 4])
    assert sub.num_qubits == 3
    assert sub.edges == [(0, 1), (1, 2)]


def test_disconnected_distance_raises():
    cmap = CouplingMap([(0, 1), (2, 3)], num_qubits=4)
    with pytest.raises(BackendError):
        cmap.distance(0, 3)


def test_neighbors():
    assert linear_chain(4).neighbors(1) == [0, 2]
