"""Unit tests for transfer learning and the EnQode encoder.

Run at 4 qubits (16 amplitudes) with small synthetic cluster data so the
full offline+online loop stays fast while exercising every code path.
"""

import numpy as np
import pytest

from repro.core import EnQodeConfig, EnQodeEncoder, TransferLearner
from repro.errors import DataError, OptimizationError
from repro.quantum import simulate_statevector, state_fidelity


@pytest.fixture(scope="module")
def cluster_data():
    """Two tight clusters of unit vectors in R^16."""
    rng = np.random.default_rng(0)
    centers = rng.normal(size=(2, 16))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    samples = []
    for center in centers:
        block = center + 0.04 * rng.normal(size=(25, 16))
        samples.append(block / np.linalg.norm(block, axis=1, keepdims=True))
    return np.concatenate(samples)


@pytest.fixture(scope="module")
def config():
    return EnQodeConfig(
        num_qubits=4,
        num_layers=6,
        offline_restarts=4,
        offline_max_iterations=600,
        online_max_iterations=50,
        max_clusters=8,
        seed=3,
    )


@pytest.fixture(scope="module")
def fitted(segment4, cluster_data, config):
    encoder = EnQodeEncoder(segment4, config)
    report = encoder.fit(cluster_data)
    return encoder, report


def test_offline_report(fitted):
    _, report = fitted
    assert report.num_clusters >= 1
    assert report.total_time > 0
    assert report.min_nearest_fidelity > 0.9
    assert len(report.cluster_fidelities) == report.num_clusters
    assert 0 < report.mean_cluster_fidelity <= 1.0


def test_encode_before_fit_rejected(segment4, config):
    encoder = EnQodeEncoder(segment4, config)
    with pytest.raises(OptimizationError):
        encoder.encode(np.ones(16))


def test_encoded_sample_fields(fitted, cluster_data):
    encoder, _ = fitted
    encoded = encoder.encode(cluster_data[0])
    assert 0.0 <= encoded.ideal_fidelity <= 1.0
    assert encoded.compile_time > 0
    assert encoded.cluster_index >= 0
    assert encoded.theta.shape == (encoder.ansatz.num_parameters,)


def test_ideal_fidelity_matches_circuit_simulation(fitted, cluster_data):
    encoder, _ = fitted
    encoded = encoder.encode(cluster_data[3])
    psi = simulate_statevector(encoded.circuit)
    simulated = state_fidelity(psi, encoded.physical_target())
    assert simulated == pytest.approx(encoded.ideal_fidelity, abs=1e-9)


def test_fixed_circuit_shape_across_samples(fitted, cluster_data):
    encoder, _ = fitted
    rows = {
        tuple(encoder.encode(x).metrics().as_row().items())
        for x in cluster_data[:6]
    }
    assert len(rows) == 1  # zero variability — EnQode's core claim


def test_transfer_beats_cold_start_iterations(fitted, cluster_data):
    encoder, _ = fitted
    transfer: TransferLearner = encoder._transfer
    sample = cluster_data[7] / np.linalg.norm(cluster_data[7])
    warm = transfer.embed(sample)
    cold = transfer.embed_cold(sample, seed=0)
    assert warm.result.num_iterations <= cold.result.num_iterations
    assert warm.fidelity >= cold.fidelity - 0.05


def test_encode_batch(fitted, cluster_data):
    encoder, _ = fitted
    batch = encoder.encode_batch(cluster_data[:3])
    assert len(batch) == 3


def test_encode_normalizes_input(fitted, cluster_data):
    encoder, _ = fitted
    scaled = 5.0 * cluster_data[0]
    encoded = encoder.encode(scaled)
    assert np.linalg.norm(encoded.target) == pytest.approx(1.0)


def test_sample_dimension_validated(fitted):
    encoder, _ = fitted
    with pytest.raises(OptimizationError):
        encoder.encode(np.ones(8))


def test_fit_dimension_validated(segment4, config):
    encoder = EnQodeEncoder(segment4, config)
    with pytest.raises(OptimizationError):
        encoder.fit(np.ones((10, 8)))


def test_encode_pad_with_matches_manual_padding(fitted, cluster_data):
    encoder, _ = fitted
    short = cluster_data[0][:10]
    # Reproduce prepare_amplitudes' padding + normalization bitwise so the
    # deterministic pipeline yields identical outputs on both routes.
    padded = np.full((1, 16), 0.3)
    padded[:, :10] = short
    padded = padded / np.linalg.norm(padded, axis=1, keepdims=True)
    via_pad = encoder.encode(short, pad_with=0.3)
    manual = encoder.encode(padded[0])
    assert via_pad.cluster_index == manual.cluster_index
    assert np.array_equal(via_pad.theta, manual.theta)
    assert np.array_equal(via_pad.target, manual.target)
    assert via_pad.ideal_fidelity == manual.ideal_fidelity


def test_encode_mismatched_lengths_rejected(fitted):
    encoder, _ = fitted
    # pad_with can never stretch rows that are too long.
    with pytest.raises(DataError):
        encoder.encode(np.ones(20), pad_with=0.0)
    # Short rows without pad_with stay a validation error (legacy class).
    with pytest.raises(OptimizationError):
        encoder.encode(np.ones(10))
    # ... and with the convenience kwargs engaged they are a DataError.
    with pytest.raises(DataError):
        encoder.encode(np.ones(10), normalize=False)


def test_encode_no_normalize_requires_unit_norm(fitted, cluster_data):
    encoder, _ = fitted
    unit = cluster_data[0]
    encoded = encoder.encode(unit, normalize=False)
    assert np.linalg.norm(encoded.target) == pytest.approx(1.0)
    with pytest.raises(DataError):
        encoder.encode(3.0 * unit, normalize=False)


def test_encode_batch_pad_with(fitted, cluster_data):
    encoder, _ = fitted
    short = cluster_data[:2, :12]
    batch = encoder.encode_batch(short, pad_with=0.1)
    assert len(batch) == 2
    for encoded in batch:
        assert np.linalg.norm(encoded.target) == pytest.approx(1.0)
    with pytest.raises(DataError):
        encoder.encode_batch(np.ones((2, 20)), pad_with=0.1)


def test_fit_pad_with(segment4, cluster_data):
    config = EnQodeConfig(
        num_qubits=4,
        num_layers=4,
        offline_restarts=1,
        offline_max_iterations=60,
        online_max_iterations=10,
        max_clusters=2,
        seed=5,
    )
    encoder = EnQodeEncoder(segment4, config)
    report = encoder.fit(cluster_data[:12, :12], pad_with=0.2)
    assert report.num_clusters >= 1
    with pytest.raises(DataError):
        EnQodeEncoder(segment4, config).fit(
            cluster_data[:12, :12], normalize=False
        )


def test_cluster_centers_accessible(fitted):
    encoder, report = fitted
    assert encoder.cluster_centers().shape[0] == report.num_clusters


def test_online_fidelity_tracks_cluster_quality(fitted, cluster_data):
    encoder, report = fitted
    encoded = encoder.encode(cluster_data[0])
    # Fine-tuning from the nearest cluster cannot be much worse than the
    # cluster model itself.
    cluster_fid = report.cluster_fidelities[encoded.cluster_index]
    assert encoded.ideal_fidelity >= cluster_fid - 0.1


def test_config_validation():
    with pytest.raises(OptimizationError):
        EnQodeConfig(num_qubits=1)
    with pytest.raises(OptimizationError):
        EnQodeConfig(min_cluster_fidelity=0.0)
    with pytest.raises(OptimizationError):
        EnQodeConfig(online_max_iterations=0)
