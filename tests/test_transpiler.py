"""Unit tests for the end-to-end transpile pipeline."""

import numpy as np
import pytest

from repro.errors import TranspilerError
from repro.quantum import QuantumCircuit, simulate_statevector
from repro.transpile import transpile
from tests.conftest import random_circuit


def _verify_equivalence(qc, backend, level, seed=None):
    result = transpile(qc, backend, optimization_level=level, seed=seed)
    logical = simulate_statevector(qc).data
    physical = simulate_statevector(result.circuit).data
    target = result.embed_target(logical)
    assert abs(np.vdot(physical, target)) ** 2 == pytest.approx(1.0)
    return result


@pytest.mark.parametrize("level", [0, 1])
def test_random_circuits_equivalent(line4, level):
    for seed in range(5):
        _verify_equivalence(random_circuit(4, 25, seed=seed), line4, level)


def test_output_is_native(line4):
    result = transpile(random_circuit(4, 30, seed=9), line4)
    native = line4.native_gates
    for instr in result.circuit:
        assert native.is_native(instr.name)
        if instr.gate.num_qubits == 2:
            assert line4.coupling_map.are_connected(*instr.qubits)


def test_level1_not_larger_than_level0(line4):
    qc = random_circuit(4, 30, seed=2)
    level0 = transpile(qc, line4, optimization_level=0)
    level1 = transpile(qc, line4, optimization_level=1)
    assert (
        level1.metrics().total_gates <= level0.metrics().total_gates
    )


def test_invalid_level_rejected(line4):
    with pytest.raises(TranspilerError):
        transpile(QuantumCircuit(2).h(0), line4, optimization_level=3)


def test_circuit_too_large_rejected(line4):
    with pytest.raises(TranspilerError):
        transpile(QuantumCircuit(5).h(0), line4)


def test_smaller_circuit_padded_onto_device(line4):
    qc = QuantumCircuit(2).h(0).cx(0, 1)
    result = transpile(qc, line4)
    assert result.circuit.num_qubits == 4
    logical = simulate_statevector(qc).data
    physical = simulate_statevector(result.circuit).data
    assert abs(np.vdot(physical, result.embed_target(logical))) ** 2 == (
        pytest.approx(1.0)
    )


def test_embed_target_shape_check(line4):
    result = transpile(QuantumCircuit(2).h(0), line4)
    with pytest.raises(TranspilerError):
        result.embed_target(np.ones(8) / np.sqrt(8))


def test_seed_changes_routing(segment8):
    qc = QuantumCircuit(8)
    rng = np.random.default_rng(0)
    for _ in range(20):
        a, b = rng.choice(8, size=2, replace=False)
        qc.cx(int(a), int(b))
    depths = {
        transpile(qc, segment8, seed=s).metrics().depth for s in range(8)
    }
    assert len(depths) > 1
    for s in (3, 4):
        _verify_equivalence(qc, segment8, 1, seed=s)


def test_metrics_exclude_virtual(line4):
    qc = QuantumCircuit(2).rz(0.5, 0).rz(0.2, 1).cx(0, 1)
    metrics = transpile(qc, line4).metrics()
    # All 1q content is virtual rz; only the entangler chain is physical.
    assert metrics.two_qubit_gates >= 1
    assert "rz" not in metrics.counts
