"""Unit tests for shared utilities."""

import time

import numpy as np
import pytest

from repro.utils import Timer, allclose_up_to_global_phase, as_rng
from repro.utils.linalg import global_phase_between, is_unitary, normalize_vector


def test_timer_measures_elapsed():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.009


def test_as_rng_passthrough():
    rng = np.random.default_rng(0)
    assert as_rng(rng) is rng


def test_as_rng_seeded_deterministic():
    assert as_rng(5).integers(1000) == as_rng(5).integers(1000)


def test_is_unitary():
    assert is_unitary(np.eye(4))
    assert not is_unitary(np.ones((2, 2)))
    assert not is_unitary(np.ones((2, 3)))


def test_global_phase_between():
    a = np.array([1.0, 1j]) / np.sqrt(2)
    z = global_phase_between(np.exp(0.3j) * a, a)
    assert z == pytest.approx(np.exp(0.3j))
    assert global_phase_between(np.array([1.0, 0.0]), np.array([0.0, 1.0])) is None


def test_allclose_up_to_global_phase():
    a = np.array([[1, 0], [0, 1j]])
    assert allclose_up_to_global_phase(-1j * a, a)
    assert not allclose_up_to_global_phase(a, np.eye(2))


def test_allclose_up_to_global_phase_shape_mismatch():
    assert not allclose_up_to_global_phase(np.eye(2), np.eye(4))


def test_normalize_vector():
    assert np.allclose(normalize_vector([3.0, 4.0]), [0.6, 0.8])
    with pytest.raises(ValueError):
        normalize_vector([0.0, 0.0])


def test_error_hierarchy():
    from repro.errors import (
        CircuitError,
        ClusteringError,
        ReproError,
        TranspilerError,
    )

    assert issubclass(CircuitError, ReproError)
    assert issubclass(TranspilerError, ReproError)
    assert issubclass(ClusteringError, ReproError)
