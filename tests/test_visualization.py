"""Unit tests for the ASCII circuit drawer."""

from repro.quantum import QuantumCircuit
from repro.quantum.visualization import draw, summary


def test_draw_single_qubit_gates():
    art = draw(QuantumCircuit(1).h(0).rz(0.5, 0))
    assert "q0:" in art
    assert "[h]" in art
    assert "[rz(0.50)]" in art


def test_draw_two_qubit_gate_with_link():
    art = draw(QuantumCircuit(2).cx(0, 1))
    lines = art.splitlines()
    assert "●" in lines[0]
    assert "[cx]" in lines[-1]
    assert any("│" in line for line in lines)


def test_draw_parallel_gates_share_column():
    serial = draw(QuantumCircuit(2).h(0).h(0))
    parallel = draw(QuantumCircuit(2).h(0).h(1))
    assert len(parallel.splitlines()[0]) < len(serial.splitlines()[0])


def test_draw_wraps_long_circuits():
    qc = QuantumCircuit(1)
    for _ in range(60):
        qc.h(0)
    art = draw(qc, max_width=40)
    assert "…" in art


def test_draw_every_row_labelled():
    art = draw(QuantumCircuit(3).h(0).cx(0, 2).x(1))
    for q in range(3):
        assert f"q{q}: " in art


def test_draw_enqode_ansatz_smoke():
    import numpy as np

    from repro.core import EnQodeAnsatz

    ansatz = EnQodeAnsatz(4, 2)
    art = draw(ansatz.circuit(np.zeros(8)))
    assert "[cy]" in art
    assert "[rx(-1.57)]" in art


def test_summary_line():
    text = summary(QuantumCircuit(2).h(0).rz(0.1, 0).cx(0, 1))
    assert "2 qubits" in text
    assert "cx x1" in text
    assert "physical" in text
